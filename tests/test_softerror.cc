/**
 * @file
 * Soft-error subsystem tests (src/robust/softerror.h): the parity/ECC
 * protection model and its detection -> recovery -> degradation
 * ladder.
 *
 * The claims under test:
 *
 *  - determinism: the flip schedule is a pure function of
 *    (configuration, seed, program), and it rides a dedicated RNG
 *    stream, so arming soft errors never shifts the GLSC or NoC fault
 *    schedules and vice versa;
 *  - identity: an armed-with-zero-flips run is cycle-identical to an
 *    unarmed one (the injector must be pay-for-what-you-use);
 *  - conservation: every injected flip resolves on exactly one ladder
 *    rung (flips == corrected + refetched + aborted, per site), and
 *    parity-only sites never take the corrected rung;
 *  - recovery: corrupted-but-recovered runs still verify against the
 *    functional reference model -- refetch recovery costs retries,
 *    never correctness;
 *  - escalation: an uncorrectable directory flip machine-checks with a
 *    post-mortem and exit code kMachineCheckExitCode in panic mode,
 *    and records the same verdict in SystemStats in report mode.
 */

#include <gtest/gtest.h>

#include "core/vatomic.h"
#include "kernels/registry.h"
#include "robust/softerror.h"
#include "sim/system.h"
#include "verify/ref_model.h"

namespace glsc {
namespace {

/** Uniform rate on all five sites, report mode (sweeps must finish). */
SoftErrorConfig
uniformSoft(double rate)
{
    SoftErrorConfig sc;
    sc.armed = true;
    sc.panicOnMachineCheck = false;
    sc.l1DataRate = rate;
    sc.l1TagRate = rate;
    sc.l2DataRate = rate;
    sc.directoryRate = rate;
    sc.glscEntryRate = rate;
    return sc;
}

std::uint64_t
sum(const std::vector<std::uint64_t> &v)
{
    std::uint64_t s = 0;
    for (std::uint64_t x : v)
        s += x;
    return s;
}

// ----- Identity: arming with zero rates must change nothing. -------

TEST(SoftErrorIdentity, ArmedZeroFlipRunIsCycleIdentical)
{
    SystemConfig plain = SystemConfig::make(2, 2, 4);
    SystemConfig armed = plain;
    armed.soft.armed = true; // all rates default to 0.0

    RunResult a = runBenchmark("HIP", 0, Scheme::Glsc, plain, 0.02, 5);
    RunResult b = runBenchmark("HIP", 0, Scheme::Glsc, armed, 0.02, 5);
    ASSERT_TRUE(a.verified) << a.detail;
    ASSERT_TRUE(b.verified) << b.detail;

    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.totalInstructions(), b.stats.totalInstructions());
    EXPECT_EQ(a.stats.l1Accesses, b.stats.l1Accesses);
    EXPECT_EQ(a.stats.l2Accesses, b.stats.l2Accesses);
    EXPECT_EQ(a.stats.glscLaneFailures(), b.stats.glscLaneFailures());
    EXPECT_EQ(a.stats.retryHistogram(), b.stats.retryHistogram());
    EXPECT_EQ(b.stats.softFlipsInjected(), 0u);
    EXPECT_EQ(b.stats.softScrubCycles, 0u);
    EXPECT_FALSE(b.stats.machineCheckDetected);
}

// ----- Schedule determinism. ---------------------------------------

TEST(SoftErrorDeterminism, IdenticalConfigGivesIdenticalSchedule)
{
    auto run = [] {
        SystemConfig cfg = SystemConfig::make(2, 2, 4);
        cfg.soft = uniformSoft(0.01);
        cfg.retry.fallbackAfter = 16;
        return runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5);
    };
    RunResult a = run();
    RunResult b = run();
    ASSERT_TRUE(a.verified) << a.detail;
    EXPECT_GT(a.stats.softFlipsInjected(), 0u) << "vacuous run";
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.softFlips, b.stats.softFlips);
    EXPECT_EQ(a.stats.softCorrected, b.stats.softCorrected);
    EXPECT_EQ(a.stats.softRefetched, b.stats.softRefetched);
    EXPECT_EQ(a.stats.softAborted, b.stats.softAborted);
    EXPECT_EQ(a.stats.softReservationsKilled,
              b.stats.softReservationsKilled);
    EXPECT_EQ(a.stats.softScrubCycles, b.stats.softScrubCycles);
}

TEST(SoftErrorDeterminism, SeedChangesSchedule)
{
    auto run = [](std::uint64_t seed) {
        SystemConfig cfg = SystemConfig::make(2, 2, 4);
        cfg.soft = uniformSoft(0.01);
        cfg.soft.seed = seed;
        cfg.retry.fallbackAfter = 16;
        return runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5);
    };
    RunResult a = run(0x5EC0);
    RunResult b = run(0xBEEF);
    ASSERT_TRUE(a.verified && b.verified);
    // Different streams virtually never flip at identical points.
    EXPECT_NE(a.stats.softFlipsInjected() + a.stats.cycles,
              b.stats.softFlipsInjected() + b.stats.cycles);
}

// ----- Cross-class stream independence. ----------------------------

/** One thread hammering its own counter: a fixed op sequence whose
 *  retries depend only on injector draws, never on arbitration, so
 *  cross-stream perturbation shows up as an exact counter mismatch. */
Task<void>
soloAtomicKernel(SimThread &t, Addr counter, int reps)
{
    for (int i = 0; i < reps; ++i)
        co_await scalarAtomicIncU32(t, counter);
}

TEST(SoftErrorStreams, ScrubsDoNotShiftTheGlscFaultSchedule)
{
    auto run = [](bool withSoft) {
        SystemConfig cfg = SystemConfig::make(2, 2, 4);
        cfg.faults.spuriousClearRate = 0.2;
        if (withSoft) {
            cfg.soft.armed = true;
            cfg.soft.panicOnMachineCheck = false;
            cfg.soft.l1DataRate = 0.5;
            cfg.soft.doubleBitFraction = 0.0; // scrub-only: pure latency
        }
        System sys(cfg);
        Addr counter = sys.layout().allocArray(1, 4);
        sys.spawn(0, [&](SimThread &t) {
            return soloAtomicKernel(t, counter, 200);
        });
        return sys.run(10'000'000);
    };
    SystemStats plain = run(false);
    SystemStats soft = run(true);
    EXPECT_GT(soft.softFlipsInjected(), 0u) << "vacuous run";
    EXPECT_GT(soft.softScrubCycles, 0u);
    // Scrubs cost latency on the dedicated stream; the GLSC fault
    // schedule (own stream, same op sequence) must not move at all.
    EXPECT_EQ(plain.faultsSpuriousClear, soft.faultsSpuriousClear);
    EXPECT_EQ(plain.scFailures, soft.scFailures);
}

TEST(SoftErrorStreams, DelayFaultsDoNotShiftTheFlipSchedule)
{
    auto run = [](bool withDelay) {
        SystemConfig cfg = SystemConfig::make(2, 2, 4);
        cfg.soft.armed = true;
        cfg.soft.panicOnMachineCheck = false;
        cfg.soft.glscEntryRate = 0.2;
        if (withDelay) {
            cfg.faults.delayRate = 0.5; // pure latency, no reservations
            cfg.faults.delayExtra = 16;
        }
        System sys(cfg);
        Addr counter = sys.layout().allocArray(1, 4);
        sys.spawn(0, [&](SimThread &t) {
            return soloAtomicKernel(t, counter, 200);
        });
        return sys.run(10'000'000);
    };
    SystemStats plain = run(false);
    SystemStats delayed = run(true);
    EXPECT_GT(delayed.faultsDelay, 0u) << "vacuous run";
    EXPECT_GT(plain.softFlipsInjected(), 0u) << "vacuous run";
    // Delay faults cost latency on their stream; the flip schedule
    // (own stream, same op sequence) must not move at all.
    EXPECT_EQ(plain.softFlips, delayed.softFlips);
    EXPECT_EQ(plain.softReservationsKilled,
              delayed.softReservationsKilled);
}

// ----- Ladder conservation and recovery. ---------------------------

TEST(SoftErrorLadder, EveryFlipResolvesOnExactlyOneRung)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.soft = uniformSoft(0.02);
    cfg.retry.fallbackAfter = 16;
    RefModel ref;
    cfg.memObserver = &ref;

    RunResult r = runBenchmark("GBC", 0, Scheme::Glsc, cfg, 0.02, 5);
    ASSERT_TRUE(r.verified) << r.detail;
    ASSERT_EQ(r.stats.softFlips.size(),
              static_cast<std::size_t>(kSoftErrorSites));
    EXPECT_GT(r.stats.softFlipsInjected(), 0u) << "vacuous run";
    // The relation is also enforced by consistencyError(); assert it
    // directly so a violation names the site.
    for (int s = 0; s < kSoftErrorSites; ++s) {
        EXPECT_EQ(r.stats.softFlips[s],
                  r.stats.softCorrected[s] + r.stats.softRefetched[s] +
                      r.stats.softAborted[s])
            << softErrorSiteName(static_cast<SoftErrorSite>(s));
    }
    // Parity-only sites have no correctable rung.
    for (SoftErrorSite s : {SoftErrorSite::L1Tag, SoftErrorSite::Directory,
                            SoftErrorSite::GlscEntry}) {
        EXPECT_EQ(r.stats.softCorrected[static_cast<int>(s)], 0u)
            << softErrorSiteName(s) << " carries parity, not ECC";
    }
    EXPECT_EQ(r.stats.consistencyError(), "");
    EXPECT_TRUE(ref.ok()) << ref.errorSummary();
}

TEST(SoftErrorRecovery, CorruptedRunsStillVerify)
{
    // Both schemes: the Base scheme recovers through scalar sc
    // failure/retry, GLSC through the lane-retry and fallback ladder.
    for (Scheme scheme : {Scheme::Base, Scheme::Glsc}) {
        for (const char *bench : {"GBC", "MFP"}) {
            SystemConfig cfg = SystemConfig::make(2, 2, 4);
            cfg.soft = uniformSoft(0.01);
            cfg.retry.fallbackAfter = 16;
            cfg.watchdog.enabled = true;
            cfg.watchdog.panicOnLivelock = false;
            RefModel ref;
            cfg.memObserver = &ref;
            RunResult r = runBenchmark(bench, 0, scheme, cfg, 0.02, 5);
            EXPECT_TRUE(r.verified)
                << bench << "/" << schemeName(scheme) << ": " << r.detail;
            EXPECT_GT(r.stats.softFlipsInjected(), 0u) << "vacuous run";
            EXPECT_FALSE(r.stats.livelockDetected)
                << r.stats.livelockReport;
            EXPECT_TRUE(ref.ok()) << ref.errorSummary();
            EXPECT_EQ(r.stats.consistencyError(), "");
        }
    }
}

// ----- Trace cross-check. ------------------------------------------

TEST(SoftErrorTrace, CountingSinkMatchesStatsExactly)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.soft = uniformSoft(0.02);
    cfg.retry.fallbackAfter = 16;
    Tracer tracer;
    CountingSink counting;
    tracer.addSink(&counting);
    cfg.tracer = &tracer;

    RunResult r = runBenchmark("GBC", 0, Scheme::Glsc, cfg, 0.02, 5);
    ASSERT_TRUE(r.verified) << r.detail;
    ASSERT_GT(r.stats.softFlipsInjected(), 0u) << "vacuous run";
    for (int s = 0; s < kSoftErrorSites; ++s) {
        SoftErrorSite site = static_cast<SoftErrorSite>(s);
        EXPECT_EQ(counting.softErrors(site, SoftErrorOutcome::Corrected),
                  r.stats.softCorrected[s])
            << softErrorSiteName(site);
        EXPECT_EQ(counting.softErrors(site, SoftErrorOutcome::Refetched),
                  r.stats.softRefetched[s])
            << softErrorSiteName(site);
        EXPECT_EQ(counting.softErrors(site, SoftErrorOutcome::Aborted),
                  r.stats.softAborted[s])
            << softErrorSiteName(site);
    }
}

// ----- Machine-check escalation. -----------------------------------

TEST(MachineCheck, ReportModeRecordsTheVerdictAndKeepsRunning)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.soft.armed = true;
    cfg.soft.panicOnMachineCheck = false;
    cfg.soft.directoryRate = 0.05; // parity: every flip is a DUE abort
    cfg.retry.fallbackAfter = 16;
    RefModel ref;
    cfg.memObserver = &ref;

    RunResult r = runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5);
    ASSERT_TRUE(r.verified) << r.detail;
    int dir = static_cast<int>(SoftErrorSite::Directory);
    ASSERT_GT(r.stats.softAborted[dir], 0u) << "vacuous run";
    EXPECT_EQ(r.stats.softAborted[dir], r.stats.softFlips[dir]);
    EXPECT_TRUE(r.stats.machineCheckDetected);
    EXPECT_NE(r.stats.machineCheckReport.find("MACHINE CHECK"),
              std::string::npos)
        << r.stats.machineCheckReport;
    EXPECT_NE(r.stats.machineCheckReport.find("directory"),
              std::string::npos)
        << r.stats.machineCheckReport;
    // Safe invalidation keeps the run recoverable even past the
    // verdict: the reference model must still hold.
    EXPECT_TRUE(ref.ok()) << ref.errorSummary();
}

using MachineCheckDeath = ::testing::Test;

TEST(MachineCheckDeath, PanicModeExitsWithTheDedicatedCode)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.soft.armed = true;
    cfg.soft.panicOnMachineCheck = true; // the default, spelled out
    cfg.soft.directoryRate = 1.0;
    EXPECT_EXIT(
        { (void)runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5); },
        ::testing::ExitedWithCode(kMachineCheckExitCode),
        "MACHINE CHECK");
}

// ----- Accounting sanity for the refetch rung. ---------------------

TEST(SoftErrorLadder, GlscEntryFlipsKillOnlyLiveReservations)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.soft.armed = true;
    cfg.soft.panicOnMachineCheck = false;
    cfg.soft.glscEntryRate = 0.1;
    cfg.retry.fallbackAfter = 16;

    RunResult r = runBenchmark("GBC", 0, Scheme::Glsc, cfg, 0.02, 5);
    ASSERT_TRUE(r.verified) << r.detail;
    int entry = static_cast<int>(SoftErrorSite::GlscEntry);
    ASSERT_GT(r.stats.softFlips[entry], 0u) << "vacuous run";
    // A GLSC-entry flip only fires against a live reservation, and
    // the ladder drops it (Refetched rung, software retries).  With
    // only this site armed, kills account one-for-one with flips.
    EXPECT_EQ(r.stats.softRefetched[entry], r.stats.softFlips[entry]);
    EXPECT_EQ(sum(r.stats.softFlips), r.stats.softFlips[entry]);
    EXPECT_EQ(r.stats.softReservationsKilled, r.stats.softFlips[entry]);
}

} // namespace
} // namespace glsc
