/**
 * @file
 * Stats-JSON schema tests (src/obs/stats_json.h): canonical round-
 * trips, strict-parser rejection cases, and the anti-drift gates --
 * the checked-in field list below and the schema version pin must be
 * updated TOGETHER with any SystemStats/ThreadStats change, so a new
 * counter cannot slip into the artifact format silently.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "analyze/finding.h"
#include "kernels/registry.h"
#include "obs/stats_json.h"
#include "obs/trace.h"

namespace glsc {
namespace {

/**
 * The schema, spelled out.  This is intentionally a verbatim copy,
 * NOT a call into the X-macros: if statsJsonFieldList() changes (a
 * field added, removed, renamed or reordered), this test fails until
 * someone consciously re-approves the schema here and bumps
 * kStatsJsonSchemaVersion.
 */
const char *const kExpectedFields[] = {
    "schema",
    // SystemStats scalars.
    "cycles",
    "l1Accesses",
    "l1Hits",
    "l1Misses",
    "l1AtomicAccesses",
    "l1AccessesCombined",
    "prefetchesIssued",
    "prefetchesUseful",
    "l2Accesses",
    "l2Misses",
    "invalidationsSent",
    "writebacks",
    "llOps",
    "scAttempts",
    "scFailures",
    "gatherLinkInstrs",
    "scatterCondInstrs",
    "glscLaneAttempts",
    "glscLaneFailAlias",
    "glscLaneFailLost",
    "glscLaneFailPolicy",
    "gsuInstrs",
    "gsuCacheRequests",
    "gsuConflictStallCycles",
    "faultsSpuriousClear",
    "faultsEvictLinked",
    "faultsStealReservation",
    "faultsBufferOverflow",
    "faultsDelay",
    "faultDelayCycles",
    "nocTransactions",
    "nocMessagesSent",
    "nocNacks",
    "nocTimeouts",
    "nocRetransmits",
    "nocDedupHits",
    "nocDropsInjected",
    "nocDupsInjected",
    "nocReordersInjected",
    "nocDelaysInjected",
    "nocFaultDelayCycles",
    "softReservationsKilled",
    "softScrubCycles",
    "analyzerRaces",
    "analyzerLockCycles",
    "analyzerLockHeldAtExit",
    "analyzerLockHeldAcrossBarrier",
    "analyzerDanglingReservations",
    "analyzerReservationOverBudget",
    "analyzerSelfWritesToLinked",
    "analyzerMaskMismatches",
    "memReads",
    "memWrites",
    "dramRowHits",
    "dramRowMisses",
    "dramRowConflicts",
    "dramQueueFullStalls",
    "dramQueueWaitCycles",
    // Structured fields.
    "livelockDetected",
    "starvingThreads",
    "livelockReport",
    "machineCheckDetected",
    "machineCheckReport",
    "l2BankAccesses",
    "l2BankWaitCycles",
    "hotLines",
    "dramChannelReqs",
    "dramChannelPeakQueue",
    "softFlips",
    "softCorrected",
    "softRefetched",
    "softAborted",
    "threads",
    // ThreadStats scalars.
    "threads[].instructions",
    "threads[].memStallCycles",
    "threads[].syncCycles",
    "threads[].doneTick",
    "threads[].atomicAttempts",
    "threads[].atomicSuccesses",
    "threads[].consecAtomicFailures",
    "threads[].maxConsecAtomicFailures",
    "threads[].lastProgressTick",
    "threads[].lastRetireTick",
    "threads[].lastFailedLine",
    "threads[].scalarFallbacks",
    "threads[].retryHist",
};

TEST(StatsJsonSchema, VersionIsPinned)
{
    // Bumping the version is a conscious act: update this pin and the
    // field list together with the format change.
    EXPECT_EQ(kStatsJsonSchemaVersion, 5);
}

TEST(StatsJsonSchema, FieldListMatchesCheckedInCopy)
{
    std::vector<std::string> got = statsJsonFieldList();
    std::vector<std::string> want(std::begin(kExpectedFields),
                                  std::end(kExpectedFields));
    EXPECT_EQ(got, want)
        << "exported schema drifted: re-approve the field list in "
           "this test and bump kStatsJsonSchemaVersion";
}

/** A stats object with every field kind populated. */
SystemStats
sampleStats()
{
    SystemStats s;
    s.cycles = 123456;
    s.l1Accesses = 1000;
    s.l1Hits = 900;
    s.l1Misses = 100;
    s.l2Accesses = 7;
    s.invalidationsSent = 3;
    s.llOps = 42;
    s.scAttempts = 42;
    s.scFailures = 5;
    s.nocTransactions = 6;
    s.nocMessagesSent = 15;
    s.nocNacks = 1;
    s.nocTimeouts = 1;
    s.nocRetransmits = 2;
    s.nocDedupHits = 2;
    s.nocDropsInjected = 1;
    s.nocDupsInjected = 1;
    s.nocReordersInjected = 1;
    s.nocDelaysInjected = 1;
    s.nocFaultDelayCycles = 32;
    s.analyzerRaces = 2;
    s.analyzerLockCycles = 1;
    s.analyzerLockHeldAtExit = 1;
    s.analyzerLockHeldAcrossBarrier = 1;
    s.analyzerDanglingReservations = 3;
    s.analyzerReservationOverBudget = 1;
    s.analyzerSelfWritesToLinked = 1;
    s.analyzerMaskMismatches = 1;
    s.memReads = 20;
    s.memWrites = 4;
    s.dramRowHits = 9;
    s.dramRowMisses = 8;
    s.dramRowConflicts = 5;
    s.dramQueueFullStalls = 2;
    s.dramQueueWaitCycles = 77;
    s.dramChannelReqs = {12, 10};
    s.dramChannelPeakQueue = {3, 2};
    s.livelockDetected = true;
    s.starvingThreads = {1, 3};
    s.livelockReport = "line1\nwith \"quotes\" and\ttabs";
    s.machineCheckDetected = true;
    s.machineCheckReport = "MACHINE CHECK: site=directory\n";
    s.softReservationsKilled = 2;
    s.softScrubCycles = 64;
    s.softFlips = {3, 1, 2, 1, 2};
    s.softCorrected = {2, 0, 1, 0, 0};
    s.softRefetched = {1, 1, 1, 0, 2};
    s.softAborted = {0, 0, 0, 1, 0};
    s.l2BankAccesses = {3, 4};
    s.l2BankWaitCycles = {0, 9};
    s.hotLines = {{0x1000, 8}, {0x0, 2}};
    s.threads.resize(2);
    s.threads[0].instructions = 11;
    s.threads[0].lastFailedLine = kNoAddr; // never failed
    s.threads[1].lastFailedLine = 0;       // failed on line 0
    s.threads[1].retryHist[0] = 4;
    s.threads[1].retryHist[15] = 1;
    return s;
}

TEST(StatsJsonRoundTrip, ExportParseReExportIsByteIdentical)
{
    SystemStats s = sampleStats();
    std::string doc = statsToJson(s);
    SystemStats parsed;
    std::string err;
    ASSERT_TRUE(statsFromJson(doc, parsed, &err)) << err;
    EXPECT_EQ(statsToJson(parsed), doc);
    // Spot-check the trickier fields survived.
    EXPECT_EQ(parsed.livelockReport, s.livelockReport);
    EXPECT_EQ(parsed.starvingThreads, s.starvingThreads);
    ASSERT_EQ(parsed.hotLines.size(), 2u);
    EXPECT_EQ(parsed.hotLines[0].line, 0x1000u);
    ASSERT_EQ(parsed.threads.size(), 2u);
    EXPECT_EQ(parsed.threads[0].lastFailedLine, kNoAddr);
    EXPECT_EQ(parsed.threads[1].lastFailedLine, 0u);
    EXPECT_EQ(parsed.threads[1].retryHist, s.threads[1].retryHist);
}

TEST(StatsJsonRoundTrip, RealRunRoundTrips)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    Tracer tracer;
    CountingSink counting;
    tracer.addSink(&counting);
    cfg.tracer = &tracer; // populate the observability breakdowns too
    RunResult r = runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5);
    ASSERT_TRUE(r.verified) << r.detail;
    std::string doc = statsToJson(r.stats);
    SystemStats parsed;
    std::string err;
    ASSERT_TRUE(statsFromJson(doc, parsed, &err)) << err;
    EXPECT_EQ(statsToJson(parsed), doc);
    EXPECT_EQ(parsed.cycles, r.stats.cycles);
    EXPECT_EQ(parsed.l2BankAccesses, r.stats.l2BankAccesses);
}

TEST(StatsJsonParser, RejectsUnknownField)
{
    std::string doc = statsToJson(sampleStats());
    std::size_t pos = doc.find("\"cycles\":");
    ASSERT_NE(pos, std::string::npos);
    doc.insert(pos, "\"bogusCounter\": 1,\n  ");
    SystemStats parsed;
    std::string err;
    EXPECT_FALSE(statsFromJson(doc, parsed, &err));
    EXPECT_NE(err.find("bogusCounter"), std::string::npos) << err;
}

TEST(StatsJsonParser, RejectsMissingField)
{
    std::string doc = statsToJson(sampleStats());
    std::size_t pos = doc.find("  \"writebacks\":");
    ASSERT_NE(pos, std::string::npos);
    std::size_t eol = doc.find('\n', pos);
    doc.erase(pos, eol - pos + 1);
    SystemStats parsed;
    EXPECT_FALSE(statsFromJson(doc, parsed));
}

TEST(StatsJsonParser, RejectsWrongSchemaVersion)
{
    std::string doc = statsToJson(sampleStats());
    std::size_t pos = doc.find("\"schema\": 5");
    ASSERT_NE(pos, std::string::npos);
    doc.replace(pos, 11, "\"schema\": 6");
    SystemStats parsed;
    std::string err;
    EXPECT_FALSE(statsFromJson(doc, parsed, &err));
    EXPECT_NE(err.find("schema"), std::string::npos) << err;
}

TEST(StatsJsonParser, RejectsGarbage)
{
    SystemStats parsed;
    EXPECT_FALSE(statsFromJson("", parsed));
    EXPECT_FALSE(statsFromJson("{", parsed));
    EXPECT_FALSE(statsFromJson("[1, 2]", parsed));
}

// ----- Findings-JSON golden round-trip (schema glsc-findings-v1). --

/** One finding of every kind, with both sites populated. */
std::vector<Finding>
sampleFindings()
{
    std::vector<Finding> out;
    for (int k = 0; k < kFindingKinds; ++k) {
        Finding f;
        f.kind = static_cast<FindingKind>(k);
        f.first.gtid = k;
        f.first.core = k / 2;
        f.first.tid = k % 2;
        f.first.tick = 100 + k;
        f.first.addr = 0x1000 + 4u * k;
        f.first.lane = k % 4;
        f.first.op = SiteOp::StoreCond;
        f.first.atomic = true;
        f.second.gtid = k + 1;
        f.second.tick = 200 + k;
        f.second.addr = 0x2000 + 4u * k;
        f.second.op = SiteOp::VStore;
        f.detail = "detail with \"quotes\" and\ttabs #" +
                   std::to_string(k);
        out.push_back(f);
    }
    return out;
}

TEST(FindingsJson, GoldenDocumentIsStable)
{
    // The exact serialized form is part of the artifact contract:
    // CI diffs findings files, so formatting drift is schema drift.
    Finding f;
    f.kind = FindingKind::Race;
    f.first.gtid = 0;
    f.first.core = 0;
    f.first.tid = 0;
    f.first.tick = 41;
    f.first.addr = 0x1000;
    f.first.op = SiteOp::Store;
    f.second.gtid = 3;
    f.second.core = 1;
    f.second.tid = 1;
    f.second.tick = 57;
    f.second.addr = 0x1000;
    f.second.lane = 2;
    f.second.op = SiteOp::ScatterCond;
    f.second.atomic = true;
    f.detail = "unordered conflicting accesses to the same word";
    std::string doc = findingsToJson({f});
    const char *want =
        "{\n"
        "  \"schema\": \"glsc-findings-v1\",\n"
        "  \"count\": 1,\n"
        "  \"findings\": [\n"
        "    {\n"
        "      \"kind\": \"race\",\n"
        "      \"first\": {\"gtid\": 0, \"core\": 0, \"tid\": 0, "
        "\"tick\": 41, \"addr\": 4096, \"lane\": -1, "
        "\"op\": \"store\", \"atomic\": false},\n"
        "      \"second\": {\"gtid\": 3, \"core\": 1, \"tid\": 1, "
        "\"tick\": 57, \"addr\": 4096, \"lane\": 2, "
        "\"op\": \"scattercond\", \"atomic\": true},\n"
        "      \"detail\": \"unordered conflicting accesses to the "
        "same word\"\n"
        "    }\n"
        "  ]\n"
        "}\n";
    EXPECT_EQ(doc, want);
}

TEST(FindingsJson, RoundTripsEveryKindByteIdentically)
{
    std::vector<Finding> fs = sampleFindings();
    std::string doc = findingsToJson(fs);
    std::vector<Finding> parsed = findingsFromJson(doc);
    ASSERT_EQ(parsed.size(), fs.size());
    EXPECT_EQ(findingsToJson(parsed), doc);
    for (std::size_t i = 0; i < fs.size(); ++i) {
        EXPECT_EQ(parsed[i].kind, fs[i].kind);
        EXPECT_EQ(parsed[i].first.gtid, fs[i].first.gtid);
        EXPECT_EQ(parsed[i].first.tick, fs[i].first.tick);
        EXPECT_EQ(parsed[i].first.addr, fs[i].first.addr);
        EXPECT_EQ(parsed[i].first.lane, fs[i].first.lane);
        EXPECT_EQ(parsed[i].first.op, fs[i].first.op);
        EXPECT_EQ(parsed[i].first.atomic, fs[i].first.atomic);
        EXPECT_EQ(parsed[i].second.addr, fs[i].second.addr);
        EXPECT_EQ(parsed[i].detail, fs[i].detail);
    }
}

TEST(FindingsJson, EmptyReportRoundTrips)
{
    std::string doc = findingsToJson({});
    EXPECT_NE(doc.find("\"count\": 0"), std::string::npos);
    EXPECT_TRUE(findingsFromJson(doc).empty());
}

TEST(FindingsJsonDeath, RejectsTamperedDocuments)
{
    std::string doc = findingsToJson(sampleFindings());
    std::string wrongSchema = doc;
    std::size_t pos = wrongSchema.find("glsc-findings-v1");
    ASSERT_NE(pos, std::string::npos);
    wrongSchema.replace(pos, 16, "glsc-findings-v9");
    EXPECT_DEATH((void)findingsFromJson(wrongSchema), "schema");

    std::string wrongCount = doc;
    pos = wrongCount.find("\"count\": 8");
    ASSERT_NE(pos, std::string::npos);
    wrongCount.replace(pos, 10, "\"count\": 7");
    EXPECT_DEATH((void)findingsFromJson(wrongCount), "count");

    EXPECT_DEATH((void)findingsFromJson(""), "");
    EXPECT_DEATH((void)findingsFromJson("{"), "");
    EXPECT_DEATH((void)findingsFromJson(doc + "x"), "");
}

// ----- consistencyError coverage for the new breakdowns. -----------

TEST(StatsConsistency, BankSumMustMatchL2Accesses)
{
    SystemStats s;
    s.l1Accesses = 0;
    s.l2Accesses = 10;
    s.l2BankAccesses = {4, 4}; // sums to 8, not 10
    s.l2BankWaitCycles = {0, 0};
    EXPECT_NE(s.consistencyError(), "");
    s.l2BankAccesses = {6, 4};
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

TEST(StatsConsistency, BankVectorSizesMustAgree)
{
    SystemStats s;
    s.l2Accesses = 4;
    s.l2BankAccesses = {4};
    s.l2BankWaitCycles = {0, 0};
    EXPECT_NE(s.consistencyError(), "");
}

TEST(StatsConsistency, IdleBankCannotAccumulateWait)
{
    SystemStats s;
    s.l2Accesses = 4;
    s.l2BankAccesses = {4, 0};
    s.l2BankWaitCycles = {0, 7}; // waited behind a bank never accessed
    EXPECT_NE(s.consistencyError(), "");
}

TEST(StatsConsistency, NocCountersMustConserve)
{
    SystemStats s;
    s.nocTransactions = 2;
    s.nocMessagesSent = 5;
    s.nocTimeouts = 1;
    s.nocRetransmits = 1;
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
    // A retransmit without a cause (timeout or NACK) is a bug...
    s.nocRetransmits = 2;
    EXPECT_NE(s.consistencyError(), "");
    s.nocNacks = 1;
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
    // ...as is a dedup hit nothing could have produced...
    s.nocDedupHits = 3;
    EXPECT_NE(s.consistencyError(), "");
    s.nocDupsInjected = 1;
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
    // ...or fewer messages than a request + reply per transaction.
    s.nocMessagesSent = 3;
    EXPECT_NE(s.consistencyError(), "");
}

TEST(StatsConsistency, DramChannelSumMustMatchRowOutcomes)
{
    SystemStats s;
    s.memReads = 10;
    s.dramRowHits = 3;
    s.dramRowMisses = 4;
    s.dramRowConflicts = 2;
    s.dramChannelReqs = {5, 5}; // sums to 10, outcomes to 9
    s.dramChannelPeakQueue = {2, 2};
    EXPECT_NE(s.consistencyError(), "");
    s.dramChannelReqs = {5, 4};
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

TEST(StatsConsistency, FixedBackendCannotReportRowOutcomes)
{
    // No channel vectors means the fixed backend ran: DRAM-only
    // counters must all be zero then.
    SystemStats s;
    s.memReads = 10;
    s.dramRowHits = 1;
    EXPECT_NE(s.consistencyError(), "");
    s.dramRowHits = 0;
    s.dramQueueFullStalls = 1;
    EXPECT_NE(s.consistencyError(), "");
    s.dramQueueFullStalls = 0;
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

TEST(StatsConsistency, DramIssueCannotOutrunAcceptance)
{
    SystemStats s;
    s.memReads = 2;
    s.memWrites = 1;
    s.dramRowMisses = 4; // 4 issued, only 3 accepted
    s.dramChannelReqs = {4};
    s.dramChannelPeakQueue = {1};
    EXPECT_NE(s.consistencyError(), "");
    s.dramRowMisses = 3;
    s.dramChannelReqs = {3};
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

TEST(StatsConsistency, ActiveChannelNeedsNonzeroPeakQueue)
{
    SystemStats s;
    s.memReads = 2;
    s.dramRowMisses = 2;
    s.dramChannelReqs = {2, 0};
    s.dramChannelPeakQueue = {0, 0}; // channel 0 issued but never queued?
    EXPECT_NE(s.consistencyError(), "");
    s.dramChannelPeakQueue = {1, 0};
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

TEST(StatsConsistency, HotLinesMustBeSortedAndNonEmpty)
{
    SystemStats s;
    s.hotLines = {{0x40, 2}, {0x80, 5}}; // ascending: not hottest-first
    EXPECT_NE(s.consistencyError(), "");
    s.hotLines = {{0x80, 5}, {0x40, 0}}; // zero-event entry
    EXPECT_NE(s.consistencyError(), "");
    s.hotLines = {{0x80, 5}, {0x40, 2}};
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

// ----- jsonQuote: hostile strings must survive the strict parser. --

TEST(JsonQuote, EscapesControlCharactersAndSpecials)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote("tab\there"), "\"tab\\there\"");
    EXPECT_EQ(jsonQuote("line1\nline2"), "\"line1\\nline2\"");
    EXPECT_EQ(jsonQuote("cr\rlf"), "\"cr\\rlf\"");
    // Raw control bytes below 0x20 without a short escape become
    // \u00XX sequences, never raw bytes in the document.
    EXPECT_EQ(jsonQuote(std::string("x\x01y", 3)), "\"x\\u0001y\"");
    EXPECT_EQ(jsonQuote(std::string("nul\0!", 5)), "\"nul\\u0000!\"");
}

TEST(JsonQuote, HostileLivelockReportRoundTrips)
{
    // A report full of control characters must round-trip through the
    // strict parser byte-for-byte: this is the failure mode jsonQuote
    // exists for (a raw 0x01 inside a string is invalid JSON).
    SystemStats s;
    s.livelockDetected = true;
    s.livelockReport = "thread 3:\n\tstuck\x01 at \"line\" 0x40\r";
    std::string doc = statsToJson(s);
    SystemStats parsed;
    std::string err;
    ASSERT_TRUE(statsFromJson(doc, parsed, &err)) << err;
    EXPECT_EQ(parsed.livelockReport, s.livelockReport);
    EXPECT_EQ(statsToJson(parsed), doc);
}

// ----- BENCH document: the artifact the campaign runner ingests. ---

BenchDoc
sampleBenchDoc()
{
    BenchDoc doc;
    doc.artifact = "table4";
    doc.scale = 0.25;
    doc.seed = 7;
    for (int dataset = 0; dataset < 2; ++dataset) {
        BenchRun run;
        run.bench = "GBC";
        run.dataset = dataset;
        run.scheme = dataset ? "GLSC" : "Base";
        run.config = "glsc44";
        run.stats = sampleStats();
        doc.runs.push_back(run);
    }
    return doc;
}

TEST(BenchDocJson, RoundTripsByteIdentically)
{
    BenchDoc doc = sampleBenchDoc();
    std::string json = benchDocToJson(doc);
    BenchDoc parsed;
    std::string err;
    ASSERT_TRUE(benchDocFromJson(json, parsed, &err)) << err;
    EXPECT_EQ(benchDocToJson(parsed), json);
    ASSERT_EQ(parsed.runs.size(), 2u);
    EXPECT_EQ(parsed.artifact, "table4");
    EXPECT_DOUBLE_EQ(parsed.scale, 0.25);
    EXPECT_EQ(parsed.seed, 7u);
    EXPECT_EQ(parsed.runs[1].scheme, "GLSC");
    EXPECT_EQ(statsToJson(parsed.runs[0].stats),
              statsToJson(doc.runs[0].stats));
}

TEST(BenchDocJson, RejectsWrongSchemaVersion)
{
    std::string json = benchDocToJson(sampleBenchDoc());
    std::size_t pos = json.find("\"benchSchema\": 5");
    ASSERT_NE(pos, std::string::npos);
    json.replace(pos, std::string("\"benchSchema\": 5").size(),
                 "\"benchSchema\": 99");
    BenchDoc parsed;
    std::string err;
    EXPECT_FALSE(benchDocFromJson(json, parsed, &err));
    EXPECT_NE(err.find("benchSchema"), std::string::npos) << err;
}

TEST(BenchDocJson, RejectsUnknownFieldAndTruncation)
{
    std::string json = benchDocToJson(sampleBenchDoc());
    std::string tampered = json;
    std::size_t pos = tampered.find("\"artifact\"");
    ASSERT_NE(pos, std::string::npos);
    tampered.insert(pos, "\"bogusCounter\": 1, ");
    BenchDoc parsed;
    EXPECT_FALSE(benchDocFromJson(tampered, parsed, nullptr));
    // A torn write (the campaign quarantine case) is never accepted.
    EXPECT_FALSE(benchDocFromJson(json.substr(0, json.size() / 2),
                                  parsed, nullptr));
    EXPECT_FALSE(benchDocFromJson("", parsed, nullptr));
}

// ----- LITMUS verdict document. ------------------------------------

LitmusDoc
sampleLitmusDoc()
{
    LitmusDoc doc;
    LitmusVerdictRow sb;
    sb.test = "SB";
    sb.mode = "tso";
    sb.forbidden = {{0, 0, 1, 1}};
    sb.required = {};
    LitmusVerdictRow mp;
    mp.test = "MP";
    mp.mode = "weak";
    mp.forbidden = {};
    mp.required = {{1, 0, 1, 1}, {0, 0, 1, 1}};
    doc.rows = {sb, mp};
    return doc;
}

TEST(LitmusDocJson, RoundTripsByteIdentically)
{
    LitmusDoc doc = sampleLitmusDoc();
    std::string json = litmusDocToJson(doc);
    LitmusDoc parsed;
    std::string err;
    ASSERT_TRUE(litmusDocFromJson(json, parsed, &err)) << err;
    ASSERT_EQ(parsed.rows.size(), doc.rows.size());
    EXPECT_EQ(parsed.rows[0].test, "SB");
    EXPECT_EQ(parsed.rows[0].mode, "tso");
    EXPECT_EQ(parsed.rows[0].forbidden, doc.rows[0].forbidden);
    EXPECT_EQ(parsed.rows[1].required, doc.rows[1].required);
    EXPECT_EQ(litmusDocToJson(parsed), json);
}

TEST(LitmusDocJson, EmptyOutcomeSetsRoundTrip)
{
    LitmusDoc doc;
    LitmusVerdictRow row;
    row.test = "LB";
    row.mode = "sc";
    doc.rows = {row};
    std::string json = litmusDocToJson(doc);
    LitmusDoc parsed;
    ASSERT_TRUE(litmusDocFromJson(json, parsed, nullptr));
    EXPECT_TRUE(parsed.rows[0].forbidden.empty());
    EXPECT_TRUE(parsed.rows[0].required.empty());
    EXPECT_EQ(litmusDocToJson(parsed), json);
}

TEST(LitmusDocJson, RejectsTamperedDocuments)
{
    std::string json = litmusDocToJson(sampleLitmusDoc());
    LitmusDoc parsed;
    std::string err;

    // Wrong schema version.
    std::string wrong = json;
    std::size_t pos = wrong.find("\"litmusSchema\": 1");
    ASSERT_NE(pos, std::string::npos);
    wrong.replace(pos, std::strlen("\"litmusSchema\": 1"),
                  "\"litmusSchema\": 999");
    EXPECT_FALSE(litmusDocFromJson(wrong, parsed, &err));
    EXPECT_NE(err.find("litmusSchema"), std::string::npos) << err;

    // Unknown field inside a verdict record.
    std::string extra = json;
    pos = extra.find("\"test\"");
    ASSERT_NE(pos, std::string::npos);
    extra.insert(pos, "\"verdict\": \"allowed\", ");
    EXPECT_FALSE(litmusDocFromJson(extra, parsed, nullptr));

    // Missing field: drop the "mode" line entirely.
    std::string missing = json;
    pos = missing.find("      \"mode\": \"tso\",\n");
    ASSERT_NE(pos, std::string::npos);
    missing.erase(pos, std::strlen("      \"mode\": \"tso\",\n"));
    EXPECT_FALSE(litmusDocFromJson(missing, parsed, nullptr));

    // Outcome elements must be unsigned integers, not strings or
    // floats (a 0.5-register outcome is a corrupt table, not data).
    std::string floaty = json;
    pos = floaty.find("[0, 0, 1, 1]");
    ASSERT_NE(pos, std::string::npos);
    floaty.replace(pos, std::strlen("[0, 0, 1, 1]"), "[0, 0.5, 1, 1]");
    EXPECT_FALSE(litmusDocFromJson(floaty, parsed, nullptr));

    // Truncation / garbage.
    EXPECT_FALSE(
        litmusDocFromJson(json.substr(0, json.size() / 2), parsed,
                          nullptr));
    EXPECT_FALSE(litmusDocFromJson("", parsed, nullptr));
    EXPECT_FALSE(litmusDocFromJson("[]", parsed, nullptr));
}

} // namespace
} // namespace glsc
