/**
 * @file
 * Coroutine Task tests: nesting (symmetric transfer), value returns,
 * exception propagation through kernels, and thread lifecycle.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/system.h"

namespace glsc {
namespace {

Task<int>
leafValue(SimThread &t, int x)
{
    co_await t.exec(1);
    co_return x * 2;
}

Task<int>
midLevel(SimThread &t, int x)
{
    int a = co_await leafValue(t, x);
    int b = co_await leafValue(t, x + 1);
    co_return a + b;
}

Task<void>
rootKernel(SimThread &t, Addr out)
{
    int v = co_await midLevel(t, 10);
    co_await t.store(out, static_cast<std::uint64_t>(v), 4);
}

TEST(Task, NestedSubroutinesReturnValues)
{
    SystemConfig cfg = SystemConfig::make(1, 1, 4);
    System sys(cfg);
    Addr out = sys.layout().alloc(kLineBytes);
    sys.spawn(0, [&](SimThread &t) { return rootKernel(t, out); });
    sys.run();
    EXPECT_EQ(sys.memory().readU32(out), 42u); // 10*2 + 11*2
}

Task<void>
deeplyNested(SimThread &t, int depth, Addr out)
{
    if (depth == 0) {
        co_await t.store(out, 777, 4);
        co_return;
    }
    co_await t.exec(1);
    co_await deeplyNested(t, depth - 1, out);
}

TEST(Task, DeepNestingSurvives)
{
    SystemConfig cfg = SystemConfig::make(1, 1, 4);
    System sys(cfg);
    Addr out = sys.layout().alloc(kLineBytes);
    sys.spawn(0,
              [&](SimThread &t) { return deeplyNested(t, 64, out); });
    SystemStats stats = sys.run();
    EXPECT_EQ(sys.memory().readU32(out), 777u);
    EXPECT_GE(stats.totalInstructions(), 64u);
}

Task<void>
innerThrows(SimThread &t)
{
    co_await t.exec(1);
    throw std::runtime_error("inner failure");
}

Task<void>
outerCatches(SimThread &t, Addr out)
{
    bool caught = false;
    try {
        co_await innerThrows(t);
    } catch (const std::runtime_error &) {
        caught = true;
    }
    co_await t.store(out, caught ? 1 : 0, 4);
}

TEST(Task, ExceptionsPropagateAcrossSuspension)
{
    SystemConfig cfg = SystemConfig::make(1, 1, 4);
    System sys(cfg);
    Addr out = sys.layout().alloc(kLineBytes);
    sys.spawn(0, [&](SimThread &t) { return outerCatches(t, out); });
    sys.run();
    EXPECT_EQ(sys.memory().readU32(out), 1u);
}

Task<void>
uncaughtThrower(SimThread &t)
{
    co_await t.exec(5);
    throw std::logic_error("kernel bug");
}

TEST(Task, UncaughtKernelExceptionSurfacesFromRun)
{
    SystemConfig cfg = SystemConfig::make(1, 1, 4);
    System sys(cfg);
    sys.spawn(0, [&](SimThread &t) { return uncaughtThrower(t); });
    EXPECT_THROW(sys.run(), std::logic_error);
}

Task<void>
idCheck(SimThread &t, std::vector<int> *seen)
{
    co_await t.exec(1);
    seen->push_back(t.globalId());
}

TEST(Task, ThreadIdentitiesAreStable)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    System sys(cfg);
    std::vector<int> seen;
    sys.spawnAll([&](SimThread &t) { return idCheck(t, &seen); });
    sys.run();
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(sys.thread(3).coreId(), 1);
    EXPECT_EQ(sys.thread(3).tid(), 1);
}

} // namespace
} // namespace glsc
