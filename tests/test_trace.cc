/**
 * @file
 * Observability-layer tests (src/obs/trace.h): golden-trace
 * determinism, event-ordering invariants replayed from the stream,
 * sink behavior, and the cross-check tier asserting CountingSink
 * totals against the independently maintained SystemStats counters
 * for every kernel under both schemes.
 *
 * The cross-check is the heart of this file: the trace hooks and the
 * aggregate counters live in different layers (the GSU counts lanes
 * at group completion, the memory system emits failure events at its
 * serialization points), so agreement is evidence that both tell the
 * truth, not that one copies the other.
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "core/retry.h"
#include "core/vatomic.h"
#include "kernels/registry.h"
#include "obs/stats_json.h"
#include "obs/trace.h"
#include "sim/system.h"
#include "stats/stats.h"

namespace glsc {
namespace {

/** All seven RMS kernels, paper order. */
const char *const kBenches[] = {"GBC", "FS", "GPS", "HIP",
                                "SMC", "MFP", "TMS"};

struct TracedRun
{
    RunResult result;
    CollectSink collect;
    TextSink text;
    ChromeTraceSink chrome;
    CountingSink counting;
    std::uint64_t emitted = 0;
};

/**
 * Runs @p bench with every sink attached.  The Tracer lives only for
 * the run, so each TracedRun's streams cover exactly one simulation.
 */
void
tracedRun(TracedRun &out, const char *bench, Scheme scheme,
          SystemConfig cfg, double scale = 0.02, std::uint64_t seed = 5)
{
    Tracer tracer;
    tracer.addSink(&out.collect);
    tracer.addSink(&out.text);
    tracer.addSink(&out.chrome);
    tracer.addSink(&out.counting);
    cfg.tracer = &tracer;
    out.result = runBenchmark(bench, 0, scheme, cfg, scale, seed);
    out.emitted = tracer.eventsEmitted();
}

// ----- Golden-trace determinism. -----------------------------------

TEST(TraceDeterminism, SameConfigSameSeedByteIdenticalStreams)
{
    TracedRun a, b;
    tracedRun(a, "GBC", Scheme::Glsc, SystemConfig::make(2, 2, 4));
    tracedRun(b, "GBC", Scheme::Glsc, SystemConfig::make(2, 2, 4));
    ASSERT_TRUE(a.result.verified) << a.result.detail;
    EXPECT_GT(a.emitted, 0u);
    EXPECT_EQ(a.emitted, b.emitted);
    // Byte-identical text and Chrome JSON: the acceptance bar for
    // reproducible post-mortems and timeline diffs.
    EXPECT_EQ(a.text.str(), b.text.str());
    EXPECT_EQ(a.chrome.json(), b.chrome.json());
}

TEST(TraceDeterminism, SeedChangesTheStream)
{
    TracedRun a, b;
    tracedRun(a, "GBC", Scheme::Glsc, SystemConfig::make(2, 2, 4), 0.02,
              5);
    tracedRun(b, "GBC", Scheme::Glsc, SystemConfig::make(2, 2, 4), 0.02,
              6);
    EXPECT_NE(a.text.str(), b.text.str());
}

TEST(TraceDeterminism, TracingNeverChangesSimulatedTiming)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    RunResult plain = runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5);
    TracedRun traced;
    tracedRun(traced, "HIP", Scheme::Glsc, cfg);
    ASSERT_TRUE(plain.verified);
    EXPECT_EQ(plain.stats.cycles, traced.result.stats.cycles);
    EXPECT_EQ(plain.stats.totalInstructions(),
              traced.result.stats.totalInstructions());
    EXPECT_EQ(plain.stats.scFailures, traced.result.stats.scFailures);
}

// ----- Event-ordering invariants. ----------------------------------

struct ReplayTallies
{
    std::uint64_t commits = 0;
    std::uint64_t steals = 0;
};

/**
 * Replays the reservation lifecycle from the stream: per (core, line)
 * the link owner implied by LinkAcquired / LinkStolen / LinkCleared,
 * asserting that every successful atomic commit was preceded by a
 * still-live matching link (success events are emitted before the
 * committing store consumes the reservation) and that steal events
 * name both contexts.
 */
ReplayTallies
replayLinkLifecycle(const std::vector<TraceEvent> &events)
{
    ReplayTallies out;
    std::map<std::pair<CoreId, Addr>, ThreadId> owner;
    for (const TraceEvent &e : events) {
        const auto key = std::make_pair(e.core, e.line);
        switch (e.type) {
          case TraceEventType::LinkAcquired:
            owner[key] = e.tid;
            break;
          case TraceEventType::LinkStolen: {
            out.steals++;
            EXPECT_GE(e.tid, 0) << formatTraceEvent(e);
            EXPECT_GE(e.tid2, 0) << formatTraceEvent(e);
            EXPECT_NE(e.tid, e.tid2) << formatTraceEvent(e);
            auto it = owner.find(key);
            EXPECT_TRUE(it != owner.end()) << formatTraceEvent(e);
            if (it != owner.end()) {
                EXPECT_EQ(it->second, e.tid2) << formatTraceEvent(e);
                it->second = e.tid;
            }
            break;
          }
          case TraceEventType::LinkCleared: {
            auto it = owner.find(key);
            EXPECT_TRUE(it != owner.end()) << formatTraceEvent(e);
            if (it != owner.end()) {
                EXPECT_EQ(it->second, e.tid) << formatTraceEvent(e);
                owner.erase(it);
            }
            break;
          }
          case TraceEventType::ScSuccess:
          case TraceEventType::ScatterCondSuccess: {
            out.commits++;
            auto it = owner.find(key);
            EXPECT_TRUE(it != owner.end())
                << "commit without a live link: " << formatTraceEvent(e);
            if (it != owner.end()) {
                EXPECT_EQ(it->second, e.tid)
                    << "commit against someone else's link: "
                    << formatTraceEvent(e);
            }
            break;
          }
          default:
            break;
        }
    }
    return out;
}

TEST(TraceOrdering, KernelStreamsReplayCleanly)
{
    for (const char *bench : {"HIP", "GBC", "FS"}) {
        TracedRun r;
        tracedRun(r, bench, Scheme::Glsc, SystemConfig::make(2, 2, 4));
        ASSERT_TRUE(r.result.verified) << bench << ": " << r.result.detail;
        ReplayTallies t = replayLinkLifecycle(r.collect.events());
        EXPECT_GT(t.commits, 0u)
            << bench << ": vacuous replay, no commits traced";
    }
}

TEST(TraceOrdering, ContendedSmtSiblingsStealAndEventsNameBoth)
{
    // All lanes of both SMT siblings hit the same four counters (one
    // cache line): each sibling's vgatherlink steals the other's
    // still-live reservation, the scenario section 3.3's asymmetric
    // backoff exists for.  Guarantees LinkStolen coverage.
    SystemConfig cfg = SystemConfig::make(1, 2, 4);
    Tracer tracer;
    CollectSink collect;
    tracer.addSink(&collect);
    cfg.tracer = &tracer;
    System sys(cfg);
    Addr bins = sys.layout().allocArray(4, 4);
    sys.spawnAll([&](SimThread &t) -> Task<void> {
        for (int rep = 0; rep < 10; ++rep) {
            VecReg idx;
            for (int l = 0; l < t.width(); ++l)
                idx[l] = static_cast<std::uint64_t>(l % 4);
            co_await vAtomicIncU32(t, bins, idx,
                                   Mask::allOnes(t.width()));
        }
    });
    SystemStats stats = sys.run(10'000'000);
    for (int b = 0; b < 4; ++b)
        EXPECT_EQ(sys.memory().readU32(bins + 4ull * b), 20u);
    (void)stats;
    ReplayTallies t = replayLinkLifecycle(collect.events());
    EXPECT_GT(t.commits, 0u);
    EXPECT_GT(t.steals, 0u)
        << "SMT siblings on one line should steal at least once";
}

TEST(TraceOrdering, BaseSchemeEmitsNoVectorAtomicEvents)
{
    // FS's Base variant uses scalar ll/sc for its reductions (HIP's
    // Base uses private histograms, Table 4 footnote, so it would be
    // vacuous here).
    TracedRun r;
    tracedRun(r, "FS", Scheme::Base, SystemConfig::make(2, 2, 4));
    ASSERT_TRUE(r.result.verified) << r.result.detail;
    EXPECT_EQ(r.counting.linksByOrigin(LinkOrigin::GatherLink), 0u);
    EXPECT_EQ(r.counting.count(TraceEventType::ScatterCondSuccess), 0u);
    EXPECT_EQ(r.counting.count(TraceEventType::ScatterCondFail), 0u);
    EXPECT_EQ(r.counting.count(TraceEventType::LaneFailAlias), 0u);
    EXPECT_GT(r.counting.linksByOrigin(LinkOrigin::LoadLinked), 0u);
}

// ----- Sink behavior. ----------------------------------------------

TEST(RingBufferSink, KeepsNewestEventsInOrder)
{
    RingBufferSink ring(4);
    for (int i = 0; i < 10; ++i) {
        TraceEvent e;
        e.tick = static_cast<Tick>(i);
        e.type = TraceEventType::RetryRound;
        e.a = static_cast<std::uint64_t>(i);
        ring.onEvent(e);
    }
    EXPECT_EQ(ring.totalSeen(), 10u);
    std::vector<TraceEvent> kept = ring.snapshot();
    ASSERT_EQ(kept.size(), 4u);
    for (std::size_t i = 0; i < kept.size(); ++i)
        EXPECT_EQ(kept[i].a, 6u + i); // oldest-first: events 6..9
    EXPECT_NE(ring.postMortem().find("retry-round"), std::string::npos);
}

TEST(RingBufferSink, WiredIntoLivelockReport)
{
    // The test_robustness livelock scenario, now with a tracer: the
    // watchdog's report must carry the ring buffer's last events, so
    // a starvation diagnosis shows what kept killing the reservation.
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.retry.kind = RetryKind::None;
    cfg.faults.stealReservationRate = 1.0;
    cfg.watchdog.enabled = true;
    cfg.watchdog.checkInterval = 1'000;
    cfg.watchdog.stallThreshold = 64;
    cfg.watchdog.strikes = 2;
    cfg.watchdog.panicOnLivelock = false;
    Tracer tracer;
    RingBufferSink ring;
    CountingSink counting;
    tracer.addSink(&ring);
    tracer.addSink(&counting);
    cfg.tracer = &tracer;

    RunResult r = runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5);
    // HIP at this fault rate degrades via fallback instead of
    // livelocking; drive the certain-livelock shape directly.
    if (!r.stats.livelockDetected) {
        SystemConfig raw = cfg;
        raw.retry.fallbackAfter = 0; // never degrade
        System sys(raw);
        Addr bins = sys.layout().allocArray(4, 4);
        sys.spawn(0, [&](SimThread &t) -> Task<void> {
            VecReg idx; // all lanes alias element 0
            co_await vAtomicIncU32(t, bins, idx,
                                   Mask::allOnes(t.width()));
        });
        r.stats = sys.run(2'000'000);
    }
    ASSERT_TRUE(r.stats.livelockDetected);
    EXPECT_NE(r.stats.livelockReport.find(
                  "last trace events before the verdict"),
              std::string::npos)
        << r.stats.livelockReport;
    EXPECT_NE(r.stats.livelockReport.find("link-stolen"),
              std::string::npos)
        << r.stats.livelockReport;
    EXPECT_GT(counting.count(TraceEventType::WatchdogSweep), 0u);
}

// ----- Cross-check tier: counting sink vs aggregate counters. ------

struct CrossCase
{
    const char *bench;
    Scheme scheme;
};

std::string
crossCaseName(const ::testing::TestParamInfo<CrossCase> &info)
{
    return std::string(info.param.bench) + "_" +
           schemeName(info.param.scheme);
}

class CrossCheck : public ::testing::TestWithParam<CrossCase>
{
};

TEST_P(CrossCheck, SinkTotalsMatchAggregateCounters)
{
    const CrossCase &c = GetParam();
    TracedRun r;
    tracedRun(r, c.bench, c.scheme, SystemConfig::make(2, 2, 4));
    ASSERT_TRUE(r.result.verified) << r.result.detail;
    const SystemStats &s = r.result.stats;
    const CountingSink &k = r.counting;

    // Cross-layer: the GSU increments glscLaneFailLost at group
    // completion; the memory system emits ScatterCondFail with the
    // lane count at the probe's serialization point.
    EXPECT_EQ(k.lanes(TraceEventType::ScatterCondFail),
              s.glscLaneFailLost);
    EXPECT_EQ(k.lanes(TraceEventType::LaneFailAlias),
              s.glscLaneFailAlias);
    EXPECT_EQ(k.lanes(TraceEventType::LaneFailPolicy),
              s.glscLaneFailPolicy);
    EXPECT_EQ(k.count(TraceEventType::GsuConflictStall),
              s.gsuConflictStallCycles);
    EXPECT_EQ(k.count(TraceEventType::L2BankAccess), s.l2Accesses);
    EXPECT_EQ(k.count(TraceEventType::DirectoryInval),
              s.invalidationsSent);
    EXPECT_EQ(k.count(TraceEventType::ScFail), s.scFailures);
    EXPECT_EQ(k.count(TraceEventType::ScSuccess),
              s.scAttempts - s.scFailures);
    EXPECT_EQ(k.linksByOrigin(LinkOrigin::LoadLinked), s.llOps);
    EXPECT_EQ(k.count(TraceEventType::ScalarFallback),
              s.totalScalarFallbacks());
    EXPECT_EQ(k.count(TraceEventType::FaultInjected), 0u)
        << "fault events in a fault-free run";

    // Loss causes partition the lost lanes, and every loss has an
    // attributed cause (Unknown would mean the Tracer lost track).
    std::uint64_t byCause = 0;
    for (int i = 0; i < kClearCauses; ++i)
        byCause += k.failLostLanesByCause(static_cast<ClearCause>(i));
    EXPECT_EQ(byCause, k.lanes(TraceEventType::ScatterCondFail));
    EXPECT_EQ(k.failLostLanesByCause(ClearCause::Unknown), 0u);
    EXPECT_EQ(k.scFailsByCause(ClearCause::Unknown), 0u);

    // The sink exported its per-bank and hotness breakdowns into the
    // stats, and they honor the conservation relations.
    ASSERT_FALSE(s.l2BankAccesses.empty());
    std::uint64_t bankSum = 0;
    for (std::uint64_t n : s.l2BankAccesses)
        bankSum += n;
    EXPECT_EQ(bankSum, s.l2Accesses);
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

std::vector<CrossCase>
makeCrossMatrix()
{
    std::vector<CrossCase> cases;
    for (const char *b : kBenches) {
        cases.push_back({b, Scheme::Base});
        cases.push_back({b, Scheme::Glsc});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, CrossCheck,
                         ::testing::ValuesIn(makeCrossMatrix()),
                         crossCaseName);

TEST(CrossCheckFaults, FaultEventsMatchInjectorCounters)
{
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.glsc.bufferEntries = 4; // give the overflow class a buffer
    cfg.faults.spuriousClearRate = 0.02;
    cfg.faults.evictLinkedRate = 0.02;
    cfg.faults.stealReservationRate = 0.02;
    cfg.faults.bufferOverflowRate = 0.02;
    cfg.faults.delayRate = 0.02;
    cfg.faults.delayExtra = 32;
    TracedRun r;
    tracedRun(r, "HIP", Scheme::Glsc, cfg);
    ASSERT_TRUE(r.result.verified) << r.result.detail;
    const SystemStats &s = r.result.stats;
    const CountingSink &k = r.counting;
    ASSERT_GT(s.faultsInjected(), 0u) << "vacuous fault run";
    EXPECT_EQ(k.count(TraceEventType::FaultInjected), s.faultsInjected());
    EXPECT_EQ(k.faultsByClass(TraceFaultClass::SpuriousClear),
              s.faultsSpuriousClear);
    EXPECT_EQ(k.faultsByClass(TraceFaultClass::EvictLinked),
              s.faultsEvictLinked);
    EXPECT_EQ(k.faultsByClass(TraceFaultClass::StealReservation),
              s.faultsStealReservation);
    EXPECT_EQ(k.faultsByClass(TraceFaultClass::BufferOverflow),
              s.faultsBufferOverflow);
    EXPECT_EQ(k.faultsByClass(TraceFaultClass::Delay), s.faultsDelay);
}

TEST(CrossCheckNoc, MessageEventsMatchProtocolCounters)
{
    // Every NoC lifecycle counter has an event stream behind it; the
    // two accountings are maintained independently (counters in
    // Interconnect, events in the sinks) and must agree exactly.
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.faults.nocDropRate = 0.03;
    cfg.faults.nocDuplicateRate = 0.03;
    cfg.faults.nocReorderRate = 0.05;
    cfg.faults.nocDelayRate = 0.05;
    cfg.faults.nocDelayExtra = 16;
    cfg.faults.seed = 7;
    TracedRun r;
    tracedRun(r, "HIP", Scheme::Glsc, cfg);
    ASSERT_TRUE(r.result.verified) << r.result.detail;
    const SystemStats &s = r.result.stats;
    const CountingSink &k = r.counting;
    ASSERT_GT(s.nocTransactions, 0u);
    ASSERT_GT(s.nocDropsInjected, 0u) << "vacuous lossy run";
    EXPECT_EQ(k.count(TraceEventType::NocSend), s.nocMessagesSent);
    EXPECT_EQ(k.count(TraceEventType::NocDrop), s.nocDropsInjected);
    EXPECT_EQ(k.count(TraceEventType::NocDuplicate), s.nocDupsInjected);
    EXPECT_EQ(k.count(TraceEventType::NocReorder),
              s.nocReordersInjected);
    EXPECT_EQ(k.count(TraceEventType::NocNack), s.nocNacks);
    EXPECT_EQ(k.count(TraceEventType::NocTimeout), s.nocTimeouts);
    EXPECT_EQ(k.count(TraceEventType::NocRetransmit), s.nocRetransmits);
    EXPECT_EQ(k.count(TraceEventType::NocRetire), s.nocTransactions);
    // Deliveries: one fresh request + one reply per transaction, plus
    // one dedup-request per dedup hit NOT caused by a duplicated copy
    // (those trace as NocDuplicate instead).
    EXPECT_EQ(k.count(TraceEventType::NocDeliver),
              2 * s.nocTransactions + s.nocDedupHits -
                  s.nocDupsInjected);
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

TEST(CrossCheckDram, MemoryEventsMatchBackendCounters)
{
    // The DRAM backend maintains its counters in issue()/send() and its
    // events in the tracer hooks; the two accountings must agree: one
    // MemReqQueued per accepted request, one MemReqIssued per row
    // outcome (classified identically), one MemReqDone per completion.
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.memBackend = MemBackendKind::Dram;
    TracedRun r;
    tracedRun(r, "HIP", Scheme::Glsc, cfg);
    ASSERT_TRUE(r.result.verified) << r.result.detail;
    const SystemStats &s = r.result.stats;
    const CountingSink &k = r.counting;
    ASSERT_GT(s.memReads, 0u);
    EXPECT_EQ(k.count(TraceEventType::MemReqQueued),
              s.memReads + s.memWrites);
    EXPECT_EQ(k.count(TraceEventType::MemReqIssued), s.dramIssued());
    EXPECT_EQ(k.count(TraceEventType::MemReqDone), s.dramIssued());
    EXPECT_EQ(k.memIssuedByOutcome(MemRowOutcome::Hit), s.dramRowHits);
    EXPECT_EQ(k.memIssuedByOutcome(MemRowOutcome::Miss),
              s.dramRowMisses);
    EXPECT_EQ(k.memIssuedByOutcome(MemRowOutcome::Conflict),
              s.dramRowConflicts);
    EXPECT_EQ(k.memIssuedByOutcome(MemRowOutcome::Flat), 0u);
    EXPECT_EQ(s.consistencyError(), "") << s.consistencyError();
}

TEST(CrossCheckDram, FixedBackendTracesFlatOutcomesOnly)
{
    TracedRun r;
    tracedRun(r, "HIP", Scheme::Glsc, SystemConfig::make(2, 2, 4));
    ASSERT_TRUE(r.result.verified) << r.result.detail;
    const SystemStats &s = r.result.stats;
    const CountingSink &k = r.counting;
    ASSERT_GT(s.memReads, 0u);
    EXPECT_EQ(k.count(TraceEventType::MemReqQueued),
              s.memReads + s.memWrites);
    EXPECT_EQ(k.memIssuedByOutcome(MemRowOutcome::Flat),
              s.memReads + s.memWrites);
    EXPECT_EQ(k.memIssuedByOutcome(MemRowOutcome::Hit), 0u);
}

TEST(TraceDeterminism, TracingNeverChangesDramTiming)
{
    // Same bar as the fixed-backend variant above, with the banked
    // DRAM model armed: attaching sinks must not move a single cycle.
    SystemConfig cfg = SystemConfig::make(2, 2, 4);
    cfg.memBackend = MemBackendKind::Dram;
    RunResult plain = runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5);
    TracedRun traced;
    tracedRun(traced, "HIP", Scheme::Glsc, cfg);
    ASSERT_TRUE(plain.verified);
    EXPECT_EQ(plain.stats.cycles, traced.result.stats.cycles);
    EXPECT_EQ(plain.stats.dramRowHits, traced.result.stats.dramRowHits);
    EXPECT_EQ(plain.stats.dramQueueWaitCycles,
              traced.result.stats.dramQueueWaitCycles);
    // Full-stats identity modulo the observability-only detail vectors
    // that only populate when a tracer is attached.
    SystemStats scrubbed = traced.result.stats;
    scrubbed.l2BankAccesses.clear();
    scrubbed.l2BankWaitCycles.clear();
    scrubbed.hotLines.clear();
    EXPECT_EQ(statsToJson(plain.stats), statsToJson(scrubbed));
}

// ----- Perf smoke (the CI trace job's cheap regression gate). ------

TEST(PerfSmoke, GlscBeatsBaseOnHipSmall)
{
    SystemConfig cfg = SystemConfig::make(4, 4, 4);
    RunResult base = runBenchmark("HIP", 0, Scheme::Base, cfg, 0.02, 5);
    RunResult glsc = runBenchmark("HIP", 0, Scheme::Glsc, cfg, 0.02, 5);
    ASSERT_TRUE(base.verified) << base.detail;
    ASSERT_TRUE(glsc.verified) << glsc.detail;
    EXPECT_LE(glsc.stats.cycles, base.stats.cycles)
        << "GLSC speedup over Base dropped below 1.0 on hip/small";
}

} // namespace
} // namespace glsc
