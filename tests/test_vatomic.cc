/**
 * @file
 * Tests for the vatomic helper library (Fig. 2 / Fig. 3 idioms):
 * correctness of vector reductions under aliasing and contention,
 * vector lock mutual exclusion, scalar ll/sc helpers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/vatomic.h"
#include "sim/random.h"
#include "sim/system.h"

namespace glsc {
namespace {

Task<void>
aliasedIncKernel(SimThread &t, Addr base, int reps)
{
    // All lanes hit the same two counters -> heavy aliasing, the
    // retry loop must still apply every lane's increment exactly once.
    for (int r = 0; r < reps; ++r) {
        VecReg idx;
        for (int l = 0; l < t.width(); ++l)
            idx[l] = static_cast<std::uint64_t>(l % 2);
        co_await vAtomicIncU32(t, base, idx, Mask::allOnes(t.width()));
    }
}

TEST(VAtomic, AliasedIncrementsAllLand)
{
    for (int w : {1, 4, 16}) {
        SystemConfig cfg = SystemConfig::make(2, 2, w);
        System sys(cfg);
        Addr base = sys.layout().alloc(kLineBytes);
        const int reps = 10;
        sys.spawnAll([&](SimThread &t) {
            return aliasedIncKernel(t, base, reps);
        });
        sys.run();
        std::uint64_t total = sys.memory().readU32(base) +
                              sys.memory().readU32(base + 4);
        EXPECT_EQ(total, static_cast<std::uint64_t>(
                             reps * w * cfg.totalThreads()))
            << "width " << w;
    }
}

Task<void>
addF32Kernel(SimThread &t, Addr base, int n)
{
    VecReg idx, addend;
    for (int l = 0; l < t.width(); ++l) {
        idx[l] = static_cast<std::uint64_t>(l);
        addend.setF32(l, 0.5f);
    }
    for (int r = 0; r < n; ++r)
        co_await vAtomicAddF32(t, base, idx, addend,
                               Mask::allOnes(t.width()));
}

TEST(VAtomic, FloatAddAccumulatesExactly)
{
    SystemConfig cfg = SystemConfig::make(4, 1, 4);
    System sys(cfg);
    Addr base = sys.layout().alloc(kLineBytes);
    sys.spawnAll([&](SimThread &t) { return addF32Kernel(t, base, 8); });
    sys.run();
    for (int l = 0; l < 4; ++l) {
        // 0.5 * 8 reps * 4 threads = 16.0, exact in binary float.
        EXPECT_FLOAT_EQ(sys.memory().readF32(base + 4ull * l), 16.0f);
    }
}

/** Critical-section overlap detector built on vLockTry. */
Task<void>
mutexKernel(SimThread &t, Addr locks, Addr owner, int iters,
            bool *violated)
{
    for (int i = 0; i < iters; ++i) {
        VecReg idx = VecReg::splat(0, t.width()); // everyone wants lock 0
        Mask want = Mask::allOnes(1);
        Mask got = co_await vLockTry(t, locks, idx, want);
        if (got.any()) {
            std::uint64_t prev = co_await t.load(owner, 4);
            if (prev != 0)
                *violated = true; // someone else inside the section
            co_await t.store(owner, t.globalId() + 1, 4);
            co_await t.exec(20); // dwell inside the critical section
            co_await t.store(owner, 0, 4);
            co_await vUnlock(t, locks, idx, got);
        } else {
            // Stagger the retry pause per thread: a fixed pause can
            // phase-lock the deterministic schedule into livelock
            // (every try happening while the lock is held), which is a
            // property of this retry idiom, not of the lock.
            co_await t.exec(3 + t.globalId() % 7);
            i--; // retry until acquired
        }
    }
}

TEST(VAtomic, VectorLocksProvideMutualExclusion)
{
    SystemConfig cfg = SystemConfig::make(4, 4, 4);
    System sys(cfg);
    Addr locks = sys.layout().alloc(kLineBytes);
    Addr owner = sys.layout().alloc(kLineBytes);
    bool violated = false;
    sys.spawnAll([&](SimThread &t) {
        return mutexKernel(t, locks, owner, 4, &violated);
    });
    sys.run();
    EXPECT_FALSE(violated);
    EXPECT_EQ(sys.memory().readU32(locks), 0u);
}

Task<void>
scalarLockKernel(SimThread &t, Addr lock, Addr counter, int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await lockAcquire(t, lock);
        std::uint64_t v = co_await t.load(counter, 4);
        co_await t.exec(1);
        co_await t.store(counter, static_cast<std::uint32_t>(v) + 1, 4);
        co_await lockRelease(t, lock);
    }
}

TEST(VAtomic, ScalarLockSerializesIncrements)
{
    SystemConfig cfg = SystemConfig::make(4, 4, 1);
    System sys(cfg);
    Addr lock = sys.layout().alloc(kLineBytes);
    Addr counter = sys.layout().alloc(kLineBytes);
    const int iters = 12;
    sys.spawnAll([&](SimThread &t) {
        return scalarLockKernel(t, lock, counter, iters);
    });
    sys.run();
    EXPECT_EQ(sys.memory().readU32(counter),
              static_cast<std::uint32_t>(iters * cfg.totalThreads()));
    EXPECT_EQ(sys.memory().readU32(lock), 0u);
}

/** Parameterized contention sweep for the scalar atomic update. */
class ScalarAtomicSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

Task<void>
contendedAdd(SimThread &t, Addr counters, int numCounters, int iters,
             std::uint64_t seed)
{
    Rng rng(seed + t.globalId());
    for (int i = 0; i < iters; ++i) {
        Addr a = counters + 4ull * rng.below(numCounters);
        co_await scalarAtomicUpdate(t, a, 4, [](std::uint64_t v) {
            return v + 1;
        });
    }
}

TEST_P(ScalarAtomicSweep, NoLostUpdates)
{
    auto [cores, threads, counters] = GetParam();
    SystemConfig cfg = SystemConfig::make(cores, threads, 4);
    System sys(cfg);
    Addr base = sys.layout().allocArray(counters, 4);
    const int iters = 40;
    sys.spawnAll([&](SimThread &t) {
        return contendedAdd(t, base, counters, iters, 31);
    });
    sys.run();
    std::uint64_t total = 0;
    for (int c = 0; c < counters; ++c)
        total += sys.memory().readU32(base + 4ull * c);
    EXPECT_EQ(total, static_cast<std::uint64_t>(
                         iters * cfg.totalThreads()));
}

INSTANTIATE_TEST_SUITE_P(
    Contention, ScalarAtomicSweep,
    ::testing::Values(std::make_tuple(1, 4, 1),   // SMT-only, 1 counter
                      std::make_tuple(4, 1, 1),   // cross-core, 1
                      std::make_tuple(4, 4, 2),   // 16 threads, 2
                      std::make_tuple(4, 4, 64),  // low contention
                      std::make_tuple(2, 2, 4)));

/**
 * Deterministic SMT reservation steal (paper section 3.3): barriers
 * force sibling B's vgatherlink between A's link and A's vscattercond,
 * so A's conditional scatter must fail wholesale while B's -- ordered
 * after A's by a third barrier -- must succeed.
 */
Task<void>
stealKernel(SimThread &t, Addr base, Barrier &b1, Barrier &b2,
            Barrier &b3, Mask *aDone, Mask *bDone)
{
    VecReg idx;
    for (int l = 0; l < t.width(); ++l)
        idx[l] = static_cast<std::uint64_t>(l);
    VecReg val = VecReg::splat(t.globalId() + 1, t.width());
    Mask all = Mask::allOnes(t.width());
    if (t.globalId() == 0) { // thread A: first link, first (failing) sc
        GatherResult g = co_await t.vgatherlink(base, idx, all, 4);
        co_await t.barrier(b1); // now B may link
        co_await t.barrier(b2); // B has stolen the reservation
        *aDone = co_await t.vscattercond(base, idx, val, g.mask, 4);
        co_await t.barrier(b3);
    } else { // thread B: steals, stores last
        co_await t.barrier(b1);
        GatherResult g = co_await t.vgatherlink(base, idx, all, 4);
        co_await t.barrier(b2);
        co_await t.barrier(b3); // A's sc has failed by now
        *bDone = co_await t.vscattercond(base, idx, val, g.mask, 4);
    }
}

TEST(VAtomic, SmtSiblingStealsVectorReservation)
{
    for (int w : {4, 16}) {
        // One core, two SMT threads sharing its L1 and GSU.
        SystemConfig cfg = SystemConfig::make(1, 2, w);
        System sys(cfg);
        Addr base = sys.layout().allocArray(w, 4);
        Barrier &b1 = sys.makeBarrier(2);
        Barrier &b2 = sys.makeBarrier(2);
        Barrier &b3 = sys.makeBarrier(2);
        Mask aDone, bDone;
        sys.spawnAll([&](SimThread &t) {
            return stealKernel(t, base, b1, b2, b3, &aDone, &bDone);
        });
        SystemStats stats = sys.run();
        EXPECT_TRUE(aDone.noneSet())
            << "width " << w << ": stolen reservation let lanes "
            << aDone.toString(w) << " through";
        EXPECT_EQ(bDone, Mask::allOnes(w)) << "width " << w;
        // Only B's (globalId 1 -> value 2) stores reached memory.
        for (int l = 0; l < w; ++l)
            EXPECT_EQ(sys.memory().readU32(base + 4ull * l), 2u)
                << "width " << w << " lane " << l;
        EXPECT_GE(stats.glscLaneFailLost, static_cast<std::uint64_t>(w));
    }
}

} // namespace
} // namespace glsc
