/**
 * @file
 * Tests for vLockAll, the section-3.2 alternative locking discipline
 * (hold all SIMD-width locks before updating), plus protocol edge
 * cases exercised through it.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/vatomic.h"
#include "sim/random.h"
#include "sim/system.h"

namespace glsc {
namespace {

Task<void>
lockAllKernel(SimThread &t, Addr locks, Addr vals, int universe,
              int iters, std::uint64_t seed)
{
    Rng rng(seed + t.globalId() * 131);
    const int w = t.width();
    for (int i = 0; i < iters; ++i) {
        VecReg idx;
        for (int l = 0; l < w; ++l)
            idx[l] = rng.below(universe);
        Mask want = Mask::allOnes(w);
        Mask reps = co_await vLockAll(t, locks, idx, want);
        // Holding every distinct lock: read-modify-write all of them
        // with a plain gather/scatter (no atomics needed now).
        GatherResult g = co_await t.vgather(vals, idx, reps, 4);
        co_await t.exec(1);
        VecReg upd;
        for (int l = 0; l < w; ++l)
            upd[l] = g.value.u32(l) + 1;
        co_await t.vscatter(vals, idx, upd, reps, 4);
        co_await vUnlock(t, locks, idx, reps);
    }
}

TEST(VLockAll, HoldsAllDistinctLocksAndConserves)
{
    SystemConfig cfg = SystemConfig::make(4, 2, 4);
    System sys(cfg);
    const int universe = 96;
    Addr locks = sys.layout().allocArray(universe, 4);
    Addr vals = sys.layout().allocArray(universe, 4);
    const int iters = 20;
    sys.spawnAll([&](SimThread &t) {
        return lockAllKernel(t, locks, vals, universe, iters, 3);
    });
    sys.run();
    // Aliased lanes are deduplicated, so the total count equals the
    // number of *distinct* indices drawn, which we recompute.
    std::uint64_t expect = 0;
    for (int g = 0; g < cfg.totalThreads(); ++g) {
        Rng rng(3 + g * 131);
        for (int i = 0; i < iters; ++i) {
            std::set<std::uint64_t> uniq;
            for (int l = 0; l < cfg.simdWidth; ++l)
                uniq.insert(rng.below(universe));
            expect += uniq.size();
        }
    }
    std::uint64_t total = 0;
    for (int u = 0; u < universe; ++u)
        total += sys.memory().readU32(vals + 4ull * u);
    EXPECT_EQ(total, expect);
    for (int u = 0; u < universe; ++u)
        EXPECT_EQ(sys.memory().readU32(locks + 4ull * u), 0u)
            << "lock " << u << " leaked";
}

Task<void>
hotLockAll(SimThread &t, Addr locks, Addr counter, int iters)
{
    const int w = t.width();
    for (int i = 0; i < iters; ++i) {
        // Everyone wants the same two locks -> heavy cross-thread
        // contention plus intra-group aliasing.
        VecReg idx;
        for (int l = 0; l < w; ++l)
            idx[l] = static_cast<std::uint64_t>(l % 2);
        Mask reps = co_await vLockAll(t, locks, idx, Mask::allOnes(w));
        // The critical-section update goes through the (blocking) GSU
        // so it is globally visible before the unlock scatter issues;
        // a write-buffered store could be overtaken by the unlock.
        VecReg cidx; // lane 0 -> counter word
        GatherResult g =
            co_await t.vgather(counter, cidx, Mask::allOnes(1), 4);
        co_await t.exec(1);
        VecReg upd;
        upd[0] = g.value.u32(0) + 1;
        co_await t.vscatter(counter, cidx, upd, Mask::allOnes(1), 4);
        co_await vUnlock(t, locks, idx, reps);
    }
}

TEST(VLockAll, SurvivesHeavyContentionWithoutDeadlock)
{
    SystemConfig cfg = SystemConfig::make(4, 4, 4);
    System sys(cfg);
    Addr locks = sys.layout().alloc(kLineBytes);
    Addr counter = sys.layout().alloc(kLineBytes);
    const int iters = 6;
    sys.spawnAll([&](SimThread &t) {
        return hotLockAll(t, locks, counter, iters);
    });
    sys.run(); // panics on deadlock; finishing is the main assertion
    EXPECT_EQ(sys.memory().readU32(counter),
              static_cast<std::uint32_t>(iters * cfg.totalThreads()));
}

} // namespace
} // namespace glsc
