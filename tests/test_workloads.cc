/**
 * @file
 * Unit and property tests for the synthetic workload generators.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "workloads/sparse.h"
#include "workloads/synthetic.h"

namespace glsc {
namespace {

TEST(Sparse, RandomCsrShape)
{
    CsrMatrix m = makeRandomCsr(100, 200, 0.05, 1);
    EXPECT_EQ(m.rows, 100);
    EXPECT_EQ(m.cols, 200);
    EXPECT_EQ(static_cast<int>(m.rowPtr.size()), 101);
    EXPECT_EQ(m.rowPtr[100], m.nnz());
    // Density within loose bounds; every row non-empty.
    EXPECT_GT(m.nnz(), 100 * 200 * 0.05 * 0.5);
    EXPECT_LT(m.nnz(), 100 * 200 * 0.05 * 2.0);
    for (int r = 0; r < 100; ++r) {
        EXPECT_GT(m.rowPtr[r + 1], m.rowPtr[r]) << "empty row " << r;
        for (int k = m.rowPtr[r]; k < m.rowPtr[r + 1]; ++k) {
            EXPECT_GE(m.colIdx[k], 0);
            EXPECT_LT(m.colIdx[k], 200);
        }
    }
}

TEST(Sparse, DeterministicInSeed)
{
    CsrMatrix a = makeRandomCsr(50, 50, 0.1, 7);
    CsrMatrix b = makeRandomCsr(50, 50, 0.1, 7);
    CsrMatrix c = makeRandomCsr(50, 50, 0.1, 8);
    EXPECT_EQ(a.colIdx, b.colIdx);
    EXPECT_EQ(a.values, b.values);
    EXPECT_NE(a.colIdx, c.colIdx);
}

TEST(Sparse, LowerTriangularStructure)
{
    CsrMatrix l = makeLowerTriangular(64, 0.2, 3);
    for (int r = 0; r < 64; ++r) {
        int last = l.rowPtr[r + 1] - 1;
        EXPECT_EQ(l.colIdx[last], r) << "diagonal missing in row " << r;
        EXPECT_NEAR(std::abs(l.values[last]), 1.0f, 1e-6);
        for (int k = l.rowPtr[r]; k < last; ++k)
            EXPECT_LT(l.colIdx[k], r);
    }
}

TEST(Sparse, ForwardSolveInvertsMultiply)
{
    CsrMatrix l = makeLowerTriangular(80, 0.1, 11);
    Rng rng(4);
    std::vector<float> x(80);
    for (auto &v : x)
        v = static_cast<float>(rng.uniform() - 0.5);
    // b = L x, then solve L y = b and compare y to x.
    std::vector<float> b(80, 0.0f);
    for (int r = 0; r < 80; ++r) {
        for (int k = l.rowPtr[r]; k < l.rowPtr[r + 1]; ++k)
            b[r] += l.values[k] * x[l.colIdx[k]];
    }
    std::vector<float> y = forwardSolve(l, b);
    for (int i = 0; i < 80; ++i)
        EXPECT_NEAR(y[i], x[i], 1e-4) << "row " << i;
}

TEST(Sparse, LevelScheduleRespectsDependencies)
{
    CsrMatrix l = makeLowerTriangular(120, 0.05, 19);
    auto levels = levelSchedule(l);
    std::vector<int> levelOf(120, -1);
    int count = 0;
    for (std::size_t lv = 0; lv < levels.size(); ++lv) {
        for (int c : levels[lv]) {
            levelOf[c] = static_cast<int>(lv);
            count++;
        }
    }
    EXPECT_EQ(count, 120);
    // Every strictly-lower dependency sits in an earlier level.
    for (int r = 0; r < 120; ++r) {
        for (int k = l.rowPtr[r]; k < l.rowPtr[r + 1]; ++k) {
            int c = l.colIdx[k];
            if (c < r) {
                EXPECT_LT(levelOf[c], levelOf[r]);
            }
        }
    }
}

TEST(Synthetic, RunIndicesAliasRateTracksParameter)
{
    auto idx = makeRunIndices(40000, 1024, 0.35, 5);
    int repeats = 0;
    for (std::size_t i = 1; i < idx.size(); ++i)
        repeats += idx[i] == idx[i - 1];
    double rate = double(repeats) / (idx.size() - 1);
    EXPECT_NEAR(rate, 0.35, 0.02);
    for (auto v : idx)
        EXPECT_LT(v, 1024u);
}

TEST(Synthetic, HotsetFractionRespected)
{
    auto idx = makeHotsetIndices(50000, 4096, 2, 0.7, 9);
    // The two hot values must cover roughly hotFraction of draws.
    std::map<std::uint32_t, int> freq;
    for (auto v : idx)
        freq[v]++;
    std::vector<int> counts;
    for (auto &[v, c] : freq)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    double hotShare = double(counts[0] + counts[1]) / idx.size();
    EXPECT_NEAR(hotShare, 0.7, 0.03);
}

TEST(Synthetic, FlowGraphConnectedAndLocal)
{
    FlowGraph g = makeFlowGraph(256, 1024, 8, 3);
    EXPECT_EQ(static_cast<int>(g.edges.size()), 1024);
    // Sorted by from; endpoints valid; chain present.
    for (std::size_t i = 1; i < g.edges.size(); ++i)
        EXPECT_LE(g.edges[i - 1].from, g.edges[i].from);
    std::set<std::pair<int, int>> chain;
    for (const auto &e : g.edges) {
        EXPECT_GE(e.from, 0);
        EXPECT_LT(e.from, 256);
        EXPECT_NE(e.from, e.to);
        EXPECT_GE(e.capacity, 1u);
        chain.insert({e.from, e.to});
    }
    for (int i = 1; i < 256; ++i)
        EXPECT_TRUE(chain.count({i - 1, i})) << "chain edge " << i;
}

TEST(Synthetic, ConstraintsCanonicalAndLocal)
{
    ConstraintSet cs = makeConstraints(500, 2000, 6, 17);
    EXPECT_EQ(static_cast<int>(cs.constraints.size()), 2000);
    for (std::size_t i = 0; i < cs.constraints.size(); ++i) {
        const Constraint &c = cs.constraints[i];
        EXPECT_LT(c.a, c.b);
        EXPECT_LE(c.b - c.a, 6 + 6); // clamping can stretch slightly
        if (i > 0) {
            EXPECT_LE(cs.constraints[i - 1].a, c.a); // sorted
        }
    }
}

TEST(Synthetic, GroupIndependentProducesDisjointGroups)
{
    ConstraintSet cs = makeConstraints(400, 512, 6, 23);
    groupIndependent(cs, 0, 512, 4);
    // Count how many aligned groups of 4 are fully independent; the
    // greedy pass should make the vast majority so.
    int independent = 0, groups = 0;
    for (int g = 0; g + 4 <= 512; g += 4) {
        std::set<int> used;
        bool ok = true;
        for (int i = g; i < g + 4; ++i) {
            ok &= used.insert(cs.constraints[i].a).second;
            ok &= used.insert(cs.constraints[i].b).second;
        }
        groups++;
        independent += ok;
    }
    EXPECT_GT(double(independent) / groups, 0.85);
}

TEST(Synthetic, ParticlesStayInGrid)
{
    auto parts = makeParticles(5000, 24, 24, 24, 4, 77);
    for (const Particle &p : parts) {
        EXPECT_GE(p.x, 0);
        EXPECT_LE(p.x, 22); // room for the +1 neighbor
        EXPECT_GE(p.y, 0);
        EXPECT_LE(p.y, 22);
        EXPECT_GE(p.z, 0);
        EXPECT_LE(p.z, 22);
        EXPECT_GT(p.mass, 0.0f);
    }
}

TEST(Rng, ZipfSkewOrdering)
{
    Rng rng(13);
    // Higher theta concentrates mass on low ranks.
    int lowHitsWeak = 0, lowHitsStrong = 0;
    Rng a(13), b(13);
    for (int i = 0; i < 20000; ++i) {
        if (a.zipf(1000, 0.3) < 10)
            lowHitsWeak++;
        if (b.zipf(1000, 0.95) < 10)
            lowHitsStrong++;
    }
    EXPECT_GT(lowHitsStrong, lowHitsWeak * 2);
}

} // namespace
} // namespace glsc
