#include "campaign/chaos.h"

#include <signal.h>

#include <cstdio>

#include "campaign/supervisor.h"
#include "obs/artifact.h"
#include "obs/stats_json.h"
#include "robust/softerror.h"
#include "sim/random.h"

namespace glsc {
namespace campaign {

ChaosBehavior
chaosBehaviorFor(int runIndex)
{
    return static_cast<ChaosBehavior>(runIndex % kChaosBehaviorCount);
}

const char *
chaosBehaviorName(ChaosBehavior b)
{
    switch (b) {
    case ChaosBehavior::Ok: return "ok";
    case ChaosBehavior::Flaky: return "flaky";
    case ChaosBehavior::Crash: return "crash";
    case ChaosBehavior::Hang: return "hang";
    case ChaosBehavior::Corrupt: return "corrupt";
    case ChaosBehavior::Torn: return "torn";
    case ChaosBehavior::Mce: return "mce";
    }
    return "ok";
}

bool
chaosBehaviorFromName(const std::string &name, ChaosBehavior &out)
{
    for (int i = 0; i < kChaosBehaviorCount; ++i) {
        ChaosBehavior b = static_cast<ChaosBehavior>(i);
        if (name == chaosBehaviorName(b)) {
            out = b;
            return true;
        }
    }
    return false;
}

namespace {

/**
 * Seed-deterministic synthetic run statistics that satisfy every
 * SystemStats::consistencyError relation, so a chaos campaign's merge
 * stage exercises exactly the same ingestion path as a real sweep.
 */
SystemStats
syntheticStats(const ChaosChildArgs &args, int dataset)
{
    std::uint64_t h = args.seed * 1000003ull +
                      static_cast<std::uint64_t>(dataset) * 131ull;
    for (char c : args.bench)
        h = h * 31ull + static_cast<unsigned char>(c);
    for (char c : args.scheme)
        h = h * 31ull + static_cast<unsigned char>(c);
    Rng rng(h);

    SystemStats s;
    s.cycles = 10000 + rng.below(5000);
    s.l1Hits = 4000 + rng.below(1000);
    s.l1Misses = 200 + rng.below(100);
    s.l1Accesses = s.l1Hits + s.l1Misses;
    s.l2Accesses = s.l1Misses;
    s.l2Misses = s.l2Accesses / 2;
    s.llOps = 100 + rng.below(50);
    s.scAttempts = s.llOps;
    s.scFailures = rng.below(s.scAttempts / 4 + 1);
    if (args.scheme == "GLSC") {
        s.gatherLinkInstrs = 50 + rng.below(20);
        s.scatterCondInstrs = s.gatherLinkInstrs;
        s.glscLaneAttempts = s.scatterCondInstrs * 4;
        s.glscLaneFailAlias = rng.below(s.glscLaneAttempts / 8 + 1);
        s.glscLaneFailLost = rng.below(s.glscLaneAttempts / 8 + 1);
    }
    s.threads.resize(4);
    for (ThreadStats &t : s.threads) {
        t.instructions = 2000 + rng.below(500);
        t.memStallCycles = 500 + rng.below(200);
        t.syncCycles = 100 + rng.below(50);
        t.doneTick = s.cycles - rng.below(100);
        t.atomicAttempts = 50 + rng.below(20);
        t.atomicSuccesses = t.atomicAttempts - rng.below(10);
        t.lastProgressTick = t.doneTick;
        t.lastRetireTick = t.doneTick;
        t.scalarFallbacks = rng.below(3);
    }
    return s;
}

int
writeValidArtifact(const ChaosChildArgs &args)
{
    BenchDoc doc;
    doc.artifact = "chaos";
    doc.scale = 1.0;
    doc.seed = args.seed;
    for (int dataset = 0; dataset < 2; ++dataset) {
        BenchRun run;
        run.bench = args.bench;
        run.dataset = dataset;
        run.scheme = args.scheme;
        run.config = "chaos16";
        run.stats = syntheticStats(args, dataset);
        doc.runs.push_back(std::move(run));
    }
    return atomicWriteFile(args.jsonPath, benchDocToJson(doc)) ? 0 : 4;
}

} // namespace

int
chaosChildMain(const ChaosChildArgs &args)
{
    switch (args.behavior) {
    case ChaosBehavior::Ok:
        return writeValidArtifact(args);

    case ChaosBehavior::Flaky:
        // Fails attempts 1..flakyAfter-1 with a distinctive code, then
        // behaves like a healthy worker.
        if (args.attempt < args.flakyAfter)
            return 3;
        return writeValidArtifact(args);

    case ChaosBehavior::Crash:
        return 42;

    case ChaosBehavior::Hang:
        // Ignore SIGTERM so the supervisor must escalate to SIGKILL;
        // deterministic coverage of the full containment path.
        signal(SIGTERM, SIG_IGN);
        for (;;)
            sleepMs(100);

    case ChaosBehavior::Corrupt:
        // Complete, atomic write of a document the strict parser must
        // reject (wrong schema version): exercises quarantine without
        // any torn-write ambiguity.
        atomicWriteFile(args.jsonPath,
                        "{\n  \"benchSchema\": 999,\n  \"artifact\": "
                        "\"chaos\"\n}\n");
        return 0;

    case ChaosBehavior::Torn: {
        // Simulates a worker that died mid-write WITHOUT the atomic
        // temp+rename discipline: half a valid document lands at the
        // final path.
        BenchDoc doc;
        doc.artifact = "chaos";
        doc.seed = args.seed;
        std::string full = benchDocToJson(doc);
        std::string half = full.substr(0, full.size() / 2);
        // glsc-lint: allow(artifact-atomic-write) reason=this chaos mode deliberately produces the torn file the orchestrator must survive
        FILE *f = std::fopen(args.jsonPath.c_str(), "w");
        if (f) {
            std::fwrite(half.data(), 1, half.size(), f);
            std::fclose(f);
        }
        return 0;
    }

    case ChaosBehavior::Mce:
        // The soft-error ladder's machine-check abort: a deterministic
        // failure (same seed, same flip, same abort) that retrying can
        // never fix.  The orchestrator must classify it PERMANENT on
        // the first attempt instead of burning --max-attempts.
        return kMachineCheckExitCode;
    }
    return 0;
}

ChaosExpect
chaosExpected(const CampaignSpec &spec)
{
    ChaosExpect e;
    const std::uint64_t n = expandMatrix(spec).size();
    const std::uint64_t perGapRetries =
        spec.maxAttempts > 0
            ? static_cast<std::uint64_t>(spec.maxAttempts - 1)
            : 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        switch (chaosBehaviorFor(static_cast<int>(i))) {
        case ChaosBehavior::Ok:
            e.completed++;
            break;
        case ChaosBehavior::Flaky:
            if (spec.chaosFlakyAfter <= spec.maxAttempts) {
                e.completed++;
                e.retries += static_cast<std::uint64_t>(
                    spec.chaosFlakyAfter - 1);
            } else {
                e.gaps++;
                e.retries += perGapRetries;
            }
            break;
        case ChaosBehavior::Crash:
        case ChaosBehavior::Hang:
            e.gaps++;
            e.retries += perGapRetries;
            break;
        case ChaosBehavior::Corrupt:
        case ChaosBehavior::Torn:
            // Exit 0 with a bad artifact: quarantined on the first
            // attempt, never retried (retrying cannot fix bad data).
            e.quarantined++;
            break;
        case ChaosBehavior::Mce:
            // Machine-check exit: permanent on the first attempt,
            // never retried (the abort is deterministic).
            e.permanents++;
            break;
        }
    }
    return e;
}

} // namespace campaign
} // namespace glsc
