/**
 * @file
 * Chaos self-test children: seeded misbehaving workers that exercise
 * the orchestrator's own robustness paths deterministically, the way
 * PR 2's in-simulator fault injector validated the GLSC retry loops.
 *
 * In --chaos mode the orchestrator replaces every real bench child
 * with `glsc-campaign --chaos-child <behaviour>`, where the behaviour
 * is a pure function of the run's matrix index (round-robin through
 * the seven classes below).  The expected campaign accounting --
 * completed / quarantined / gap / permanent / retry counts -- is
 * therefore
 * computable in closed form (chaosExpected), and --self-check
 * verifies the orchestrator against it exactly.
 */

#ifndef GLSC_TOOLS_CAMPAIGN_CHAOS_H_
#define GLSC_TOOLS_CAMPAIGN_CHAOS_H_

#include <cstdint>
#include <string>

#include "campaign/spec.h"

namespace glsc {
namespace campaign {

/** The seven misbehaviour classes, in round-robin assignment order. */
enum class ChaosBehavior
{
    Ok,      //!< healthy worker: valid artifact on the first attempt
    Flaky,   //!< fails attempts < chaosFlakyAfter, then succeeds
    Crash,   //!< exits nonzero immediately, every attempt
    Hang,    //!< ignores SIGTERM and sleeps forever (forces SIGKILL)
    Corrupt, //!< complete write of schema-invalid JSON, exit 0
    Torn,    //!< non-atomic half-written artifact, exit 0
    Mce,     //!< exits with kMachineCheckExitCode (deterministic abort)
};

inline constexpr int kChaosBehaviorCount = 7;

/** Behaviour of the run at matrix @p runIndex (round-robin). */
ChaosBehavior chaosBehaviorFor(int runIndex);

const char *chaosBehaviorName(ChaosBehavior b);

/** Reverse lookup for the --chaos-child flag; false if unknown. */
bool chaosBehaviorFromName(const std::string &name, ChaosBehavior &out);

/** Flags a chaos child is launched with. */
struct ChaosChildArgs
{
    ChaosBehavior behavior = ChaosBehavior::Ok;
    int flakyAfter = 2;  //!< Flaky succeeds on this attempt (1-based)
    int attempt = 1;     //!< which attempt this invocation is
    std::string bench = "GBC";
    std::string scheme = "Base";
    std::uint64_t seed = 1;
    std::string jsonPath;
};

/**
 * Entry point of a chaos child process; returns its exit code (does
 * not return for Hang).  Artifacts written by Ok/Flaky are valid
 * BENCH documents with seed-deterministic synthetic statistics, so
 * the merge stage produces reproducible per-cell mean/CI values.
 */
int chaosChildMain(const ChaosChildArgs &args);

/** Closed-form expected accounting for a chaos campaign. */
struct ChaosExpect
{
    std::uint64_t completed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t gaps = 0;
    std::uint64_t permanents = 0;
    std::uint64_t retries = 0;
};

ChaosExpect chaosExpected(const CampaignSpec &spec);

} // namespace campaign
} // namespace glsc

#endif // GLSC_TOOLS_CAMPAIGN_CHAOS_H_
