/**
 * @file
 * glsc-campaign: fault-tolerant orchestrator for sharded simulation
 * sweeps (tools/campaign/).  See DESIGN.md section 12 and
 * EXPERIMENTS.md for recipes.
 *
 * Exit codes: 0 campaign ran (gaps/quarantines/permanents are
 * reported in the summary, not fatal, unless --strict); 1 self-check,
 * strict-mode, or baseline-gate failure; 2 usage error.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/chaos.h"
#include "campaign/merge.h"
#include "campaign/orchestrator.h"
#include "campaign/spec.h"
#include "obs/artifact.h"
#include "obs/stats_json.h"
#include "sim/exit_codes.h"
#include "sim/log.h"

namespace {

using namespace glsc;
using namespace glsc::campaign;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --name NAME            campaign name (default: sweep)\n"
        "  --runner PATH          bench binary to shard (required "
        "unless --chaos)\n"
        "  --benches A,B,...      benchmark axis (default: all)\n"
        "  --schemes Base,GLSC    scheme axis\n"
        "  --mems fixed,dram      main-memory backend axis\n"
        "  --noc off,on           NoC transaction-layer axis\n"
        "  --seeds 1,2,3          workload seed axis\n"
        "  --scale F              workload scale per run\n"
        "  --jobs N               worker-process slots (default 4)\n"
        "  --max-attempts N       tries per run incl. first "
        "(default 3)\n"
        "  --timeout-ms N         per-attempt wall-clock cap\n"
        "  --kill-grace-ms N      SIGTERM -> SIGKILL grace\n"
        "  --out PATH             summary path (default "
        "CAMPAIGN_<name>.json)\n"
        "  --work-dir PATH        scratch dir (default "
        "campaign_runs)\n"
        "  --baseline PATH        prior summary for the perf gate\n"
        "  --gate-pct F           mean-cycles regression tolerance\n"
        "  --strict               exit 1 on any gap, quarantine, or "
        "permanent\n"
        "  --chaos                self-test with misbehaving "
        "children\n"
        "  --chaos-flaky-after N  flaky child succeeds on attempt N\n"
        "  --self-check           assert exact chaos accounting\n",
        argv0);
    std::exit(kExitUsage);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/** Dispatch for the hidden --chaos-child worker mode. */
int
chaosChildDispatch(int argc, char **argv)
{
    ChaosChildArgs args;
    if (argc < 3 ||
        !chaosBehaviorFromName(argv[2], args.behavior)) {
        std::fprintf(stderr, "unknown chaos behaviour\n");
        return 2;
    }
    for (int i = 3; i + 1 < argc; i += 2) {
        std::string flag = argv[i];
        std::string val = argv[i + 1];
        if (flag == "--flaky-after")
            args.flakyAfter = std::atoi(val.c_str());
        else if (flag == "--attempt")
            args.attempt = std::atoi(val.c_str());
        else if (flag == "--bench")
            args.bench = val;
        else if (flag == "--scheme")
            args.scheme = val;
        else if (flag == "--seed")
            args.seed = std::strtoull(val.c_str(), nullptr, 10);
        else if (flag == "--json")
            args.jsonPath = val;
        else {
            std::fprintf(stderr, "unknown chaos-child flag %s\n",
                         flag.c_str());
            return 2;
        }
    }
    return chaosChildMain(args);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "--chaos-child") == 0)
        return chaosChildDispatch(argc, argv);

    CampaignSpec spec;
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto want = [&](const char *name) -> std::string {
            if (flag != name)
                return "";
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                usage(argv[0]);
            }
            return argv[++i];
        };
        std::string v;
        if (!(v = want("--name")).empty())
            spec.name = v;
        else if (!(v = want("--runner")).empty())
            spec.runner = v;
        else if (!(v = want("--benches")).empty())
            spec.benches = splitCsv(v);
        else if (!(v = want("--schemes")).empty())
            spec.schemes = splitCsv(v);
        else if (!(v = want("--mems")).empty())
            spec.mems = splitCsv(v);
        else if (!(v = want("--noc")).empty()) {
            spec.nocArmed.clear();
            for (const std::string &tok : splitCsv(v)) {
                if (tok == "off")
                    spec.nocArmed.push_back(false);
                else if (tok == "on")
                    spec.nocArmed.push_back(true);
                else {
                    std::fprintf(stderr,
                                 "--noc values are off/on, got %s\n",
                                 tok.c_str());
                    usage(argv[0]);
                }
            }
        } else if (!(v = want("--seeds")).empty()) {
            spec.seeds.clear();
            for (const std::string &tok : splitCsv(v))
                spec.seeds.push_back(
                    std::strtoull(tok.c_str(), nullptr, 10));
        } else if (!(v = want("--scale")).empty())
            spec.scale = std::atof(v.c_str());
        else if (!(v = want("--jobs")).empty())
            spec.jobs = std::atoi(v.c_str());
        else if (!(v = want("--max-attempts")).empty())
            spec.maxAttempts = std::atoi(v.c_str());
        else if (!(v = want("--timeout-ms")).empty())
            spec.timeoutMs = std::strtoull(v.c_str(), nullptr, 10);
        else if (!(v = want("--kill-grace-ms")).empty())
            spec.killGraceMs = std::strtoull(v.c_str(), nullptr, 10);
        else if (!(v = want("--out")).empty())
            spec.outPath = v;
        else if (!(v = want("--work-dir")).empty())
            spec.workDir = v;
        else if (!(v = want("--baseline")).empty())
            spec.baseline = v;
        else if (!(v = want("--gate-pct")).empty())
            spec.gatePct = std::atof(v.c_str());
        else if (!(v = want("--chaos-flaky-after")).empty())
            spec.chaosFlakyAfter = std::atoi(v.c_str());
        else if (flag == "--chaos")
            spec.chaos = true;
        else if (flag == "--self-check")
            spec.selfCheck = true;
        else if (flag == "--strict")
            spec.strict = true;
        else if (flag == "--help" || flag == "-h")
            usage(argv[0]);
        else {
            std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
            usage(argv[0]);
        }
    }

    if (spec.benches.empty() || spec.schemes.empty() ||
        spec.mems.empty() || spec.nocArmed.empty() ||
        spec.seeds.empty()) {
        std::fprintf(stderr, "empty matrix axis\n");
        usage(argv[0]);
    }
    if (!spec.chaos && spec.runner.empty()) {
        std::fprintf(stderr,
                     "--runner is required unless --chaos is set\n");
        usage(argv[0]);
    }
    if (spec.selfCheck && !spec.chaos) {
        std::fprintf(stderr, "--self-check requires --chaos\n");
        usage(argv[0]);
    }
    if (spec.jobs < 1 || spec.maxAttempts < 1) {
        std::fprintf(stderr, "--jobs and --max-attempts must be >= 1\n");
        usage(argv[0]);
    }

    const std::string selfExe = selfExePath(argv[0]);
    std::printf("campaign '%s': %s\n", spec.name.c_str(),
                spec.summaryLine().c_str());

    CampaignSummary summary = runCampaign(spec, selfExe);

    const std::string outFile = spec.outFile();
    if (!atomicWriteFile(outFile, campaignToJson(summary))) {
        std::fprintf(stderr, "cannot write summary %s\n",
                     outFile.c_str());
        return 1;
    }

    std::printf("matrix %llu: completed %llu, quarantined %llu, "
                "gaps %llu, permanents %llu, retries %llu\n",
                (unsigned long long)summary.matrixSize,
                (unsigned long long)summary.completed,
                (unsigned long long)summary.quarantined,
                (unsigned long long)summary.gaps,
                (unsigned long long)summary.permanents,
                (unsigned long long)summary.retries);
    for (const CampaignRunRecord &r : summary.runs) {
        if (r.outcome == "completed")
            continue;
        std::printf("  %s %s/%s seed %llu (%s): %s\n    repro: %s\n",
                    r.outcome.c_str(), r.bench.c_str(),
                    r.scheme.c_str(), (unsigned long long)r.seed,
                    r.mem.c_str(), r.detail.c_str(), r.repro.c_str());
    }
    std::printf("summary: %s (%zu cells)\n", outFile.c_str(),
                summary.cells.size());

    int rc = 0;
    if (spec.selfCheck) {
        ChaosExpect e = chaosExpected(spec);
        if (summary.completed != e.completed ||
            summary.quarantined != e.quarantined ||
            summary.gaps != e.gaps ||
            summary.permanents != e.permanents ||
            summary.retries != e.retries ||
            summary.completed + summary.quarantined + summary.gaps +
                    summary.permanents !=
                summary.matrixSize) {
            std::fprintf(stderr,
                         "SELF-CHECK FAILED: expected completed %llu "
                         "quarantined %llu gaps %llu permanents %llu "
                         "retries %llu\n",
                         (unsigned long long)e.completed,
                         (unsigned long long)e.quarantined,
                         (unsigned long long)e.gaps,
                         (unsigned long long)e.permanents,
                         (unsigned long long)e.retries);
            rc = 1;
        } else {
            std::printf("self-check passed: accounting matches the "
                        "closed-form chaos expectation\n");
        }
    }
    if (!spec.baseline.empty()) {
        std::string report;
        bool pass =
            baselineGate(summary, spec.baseline, spec.gatePct, report);
        if (!report.empty())
            std::printf("baseline gate report:\n%s", report.c_str());
        if (!pass) {
            std::fprintf(stderr, "BASELINE GATE FAILED\n");
            rc = 1;
        }
    }
    if (spec.strict && (summary.gaps > 0 || summary.quarantined > 0 ||
                        summary.permanents > 0)) {
        std::fprintf(stderr,
                     "STRICT MODE: %llu gaps, %llu quarantined, "
                     "%llu permanent\n",
                     (unsigned long long)summary.gaps,
                     (unsigned long long)summary.quarantined,
                     (unsigned long long)summary.permanents);
        rc = 1;
    }
    return rc;
}
