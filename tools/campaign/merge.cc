#include "campaign/merge.h"

#include <cmath>

#include "obs/artifact.h"
#include "sim/log.h"

namespace glsc {
namespace campaign {

std::vector<std::string>
campaignMetricNames()
{
    return {"cycles",     "instructions",    "memStallCycles",
            "l1Misses",   "l2Misses",        "glscLaneFailures",
            "scalarFallbacks"};
}

namespace {

/** Metric values of one run, aligned with campaignMetricNames(). */
std::vector<double>
metricValues(const SystemStats &s)
{
    return {static_cast<double>(s.cycles),
            static_cast<double>(s.totalInstructions()),
            static_cast<double>(s.totalMemStallCycles()),
            static_cast<double>(s.l1Misses),
            static_cast<double>(s.l2Misses),
            static_cast<double>(s.glscLaneFailures()),
            static_cast<double>(s.totalScalarFallbacks())};
}

} // namespace

CampaignStat
computeStat(const std::vector<double> &samples)
{
    CampaignStat st;
    st.n = samples.size();
    if (samples.empty())
        return st;
    double sum = 0.0;
    st.min = samples[0];
    st.max = samples[0];
    for (double v : samples) {
        sum += v;
        if (v < st.min)
            st.min = v;
        if (v > st.max)
            st.max = v;
    }
    st.mean = sum / static_cast<double>(st.n);
    if (st.n >= 2) {
        double ss = 0.0;
        for (double v : samples)
            ss += (v - st.mean) * (v - st.mean);
        double sdev = std::sqrt(ss / static_cast<double>(st.n - 1));
        st.ci95 = 1.96 * sdev / std::sqrt(static_cast<double>(st.n));
    }
    return st;
}

bool
ingestArtifact(const std::string &path, std::vector<BenchRun> &out,
               std::string &why)
{
    std::string json;
    if (!readFile(path, json)) {
        why = "artifact missing or unreadable: " + path;
        return false;
    }
    BenchDoc doc;
    std::string err;
    if (!benchDocFromJson(json, doc, &err)) {
        why = "artifact rejected by strict parser: " + err;
        return false;
    }
    for (const BenchRun &run : doc.runs) {
        std::string broken = run.stats.consistencyError();
        if (!broken.empty()) {
            why = strprintf("conservation violation in %s dataset %c "
                            "(%s): %s",
                            run.bench.c_str(), 'A' + run.dataset,
                            run.scheme.c_str(), broken.c_str());
            return false;
        }
    }
    for (BenchRun &run : doc.runs)
        out.push_back(std::move(run));
    return true;
}

Merger::Group *
Merger::findOrCreate(const BenchRun &run, const std::string &mem,
                     bool nocArmed)
{
    for (Group &g : groups_) {
        if (g.bench == run.bench && g.dataset == run.dataset &&
            g.scheme == run.scheme && g.config == run.config &&
            g.mem == mem && g.nocArmed == nocArmed)
            return &g;
    }
    Group g;
    g.bench = run.bench;
    g.dataset = run.dataset;
    g.scheme = run.scheme;
    g.config = run.config;
    g.mem = mem;
    g.nocArmed = nocArmed;
    g.samples.resize(campaignMetricNames().size());
    groups_.push_back(std::move(g));
    return &groups_.back();
}

void
Merger::add(const BenchRun &run, const std::string &mem, bool nocArmed)
{
    Group *g = findOrCreate(run, mem, nocArmed);
    std::vector<double> vals = metricValues(run.stats);
    for (std::size_t m = 0; m < vals.size(); ++m)
        g->samples[m].push_back(vals[m]);
}

std::vector<CampaignCell>
Merger::cells() const
{
    std::vector<std::string> names = campaignMetricNames();
    std::vector<CampaignCell> out;
    for (const Group &g : groups_) {
        CampaignCell c;
        c.bench = g.bench;
        c.dataset = g.dataset;
        c.scheme = g.scheme;
        c.config = g.config;
        c.mem = g.mem;
        c.nocArmed = g.nocArmed;
        c.seeds = g.samples.empty() ? 0 : g.samples[0].size();
        for (std::size_t m = 0; m < names.size(); ++m) {
            CampaignMetric metric;
            metric.name = names[m];
            metric.stat = computeStat(g.samples[m]);
            c.metrics.push_back(std::move(metric));
        }
        out.push_back(std::move(c));
    }
    return out;
}

namespace {

const CampaignCell *
findCell(const CampaignSummary &s, const CampaignCell &like)
{
    for (const CampaignCell &c : s.cells) {
        if (c.bench == like.bench && c.dataset == like.dataset &&
            c.scheme == like.scheme && c.config == like.config &&
            c.mem == like.mem && c.nocArmed == like.nocArmed)
            return &c;
    }
    return nullptr;
}

double
meanCycles(const CampaignCell &c)
{
    for (const CampaignMetric &m : c.metrics)
        if (m.name == "cycles")
            return m.stat.mean;
    return 0.0;
}

} // namespace

bool
baselineGate(const CampaignSummary &current,
             const std::string &baselinePath, double gatePct,
             std::string &report)
{
    std::string json;
    if (!readFile(baselinePath, json)) {
        report += "baseline unreadable: " + baselinePath + "\n";
        return false;
    }
    CampaignSummary base;
    std::string err;
    if (!campaignFromJson(json, base, &err)) {
        report += "baseline rejected by strict parser: " + err + "\n";
        return false;
    }
    bool pass = true;
    for (const CampaignCell &cur : current.cells) {
        const CampaignCell *old = findCell(base, cur);
        if (!old) {
            report += strprintf("new cell (no baseline): %s/%c/%s/%s\n",
                                cur.bench.c_str(), 'A' + cur.dataset,
                                cur.scheme.c_str(), cur.config.c_str());
            continue;
        }
        double was = meanCycles(*old);
        double now = meanCycles(cur);
        if (was > 0.0 && now > was * (1.0 + gatePct / 100.0)) {
            pass = false;
            report += strprintf(
                "REGRESSION %s/%c/%s/%s: mean cycles %.0f -> %.0f "
                "(+%.2f%%, gate %.2f%%)\n",
                cur.bench.c_str(), 'A' + cur.dataset,
                cur.scheme.c_str(), cur.config.c_str(), was, now,
                (now / was - 1.0) * 100.0, gatePct);
        }
    }
    for (const CampaignCell &old : base.cells) {
        if (!findCell(current, old))
            report += strprintf("cell lost vs baseline: %s/%c/%s/%s\n",
                                old.bench.c_str(), 'A' + old.dataset,
                                old.scheme.c_str(), old.config.c_str());
    }
    return pass;
}

} // namespace campaign
} // namespace glsc
