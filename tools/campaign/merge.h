/**
 * @file
 * Artifact ingestion and statistical merge for the campaign
 * orchestrator.
 *
 * Every surviving child artifact goes through the same gauntlet: read
 * the file, strict-parse it with benchDocFromJson (schema version,
 * field set, and types all pinned), and re-check every embedded run's
 * SystemStats::consistencyError conservation relations.  Anything
 * that fails is quarantined -- the merge never averages over data it
 * cannot vouch for.  Surviving runs are grouped into matrix cells
 * (bench, dataset, scheme, config, mem, nocArmed) and each metric is
 * aggregated across seeds into mean / CI95 / min / max.
 */

#ifndef GLSC_TOOLS_CAMPAIGN_MERGE_H_
#define GLSC_TOOLS_CAMPAIGN_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats_json.h"

namespace glsc {
namespace campaign {

/** Metric names every cell aggregates, in emission order. */
std::vector<std::string> campaignMetricNames();

/** Mean / CI95 / min / max of @p samples (ci95 = 0 when n < 2). */
CampaignStat computeStat(const std::vector<double> &samples);

/**
 * Reads and strictly validates one child artifact.  On success
 * appends the document's runs to @p out and returns true; on any
 * failure (unreadable file, parse/schema error, conservation
 * violation) returns false with the reason in @p why.
 */
bool ingestArtifact(const std::string &path, std::vector<BenchRun> &out,
                    std::string &why);

/** Accumulates validated runs and folds them into campaign cells. */
class Merger
{
  public:
    /** Adds one validated run under its (mem, nocArmed) axis point. */
    void add(const BenchRun &run, const std::string &mem, bool nocArmed);

    /**
     * Aggregates everything added so far into cells, ordered by first
     * insertion (i.e. matrix order, since the orchestrator ingests
     * run records in index order).
     */
    std::vector<CampaignCell> cells() const;

  private:
    struct Group
    {
        std::string bench;
        int dataset = 0;
        std::string scheme;
        std::string config;
        std::string mem;
        bool nocArmed = false;
        /** samples[m][i] = metric m of the i-th surviving seed. */
        std::vector<std::vector<double>> samples;
    };

    Group *findOrCreate(const BenchRun &run, const std::string &mem,
                        bool nocArmed);

    std::vector<Group> groups_;
};

/**
 * Compares @p current against @p baselinePath (a prior campaign
 * summary): for every cell present in both, the mean "cycles" metric
 * may regress by at most @p gatePct percent.  Returns true when the
 * gate passes; on failure returns false and appends one line per
 * regressed cell to @p report.  Cells missing from either side are
 * reported but do not fail the gate (a grown matrix is not a
 * regression).
 */
bool baselineGate(const CampaignSummary &current,
                  const std::string &baselinePath, double gatePct,
                  std::string &report);

} // namespace campaign
} // namespace glsc

#endif // GLSC_TOOLS_CAMPAIGN_MERGE_H_
