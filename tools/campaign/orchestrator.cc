#include "campaign/orchestrator.h"

#include <cstdio>
#include <filesystem>

#include "campaign/merge.h"
#include "campaign/supervisor.h"
#include "core/retry.h"
#include "obs/artifact.h"
#include "robust/softerror.h"
#include "sim/log.h"
#include "sim/random.h"

namespace glsc {
namespace campaign {
namespace {

namespace fs = std::filesystem;

enum class RunState
{
    Pending,
    WaitingRetry,
    Running,
    Done,
};

/** Orchestrator-side bookkeeping for one planned run. */
struct RunTracker
{
    PlannedRun plan;
    RunState state = RunState::Pending;
    int attempts = 0;            //!< child invocations spent so far
    std::uint64_t readyAtMs = 0; //!< WaitingRetry release time
    std::string lastFailure;     //!< describe() of the last bad attempt
    CampaignRunRecord record;
    std::vector<BenchRun> runs;  //!< validated rows once completed
};

/** One busy worker slot. */
struct Slot
{
    SupervisedChild child;
    int runIdx = -1;
    std::vector<std::string> argv;
    std::string logPath;
    std::string jsonPath;
};

std::string
tailOfFile(const std::string &path, std::size_t maxBytes = 2048)
{
    std::string all;
    if (!readFile(path, all))
        return "";
    if (all.size() <= maxBytes)
        return all;
    return "...\n" + all.substr(all.size() - maxBytes);
}

void
writePostmortem(const std::string &dir, const RunTracker &t,
                const CampaignSpec &spec, const std::string &argvLine,
                const std::string &logPath)
{
    std::string body = strprintf(
        "run: %s\noutcome: %s\nattempts: %d/%d\ndetail: %s\n"
        "repro: %s\nseed: %llu\nlog tail:\n%s",
        t.plan.id().c_str(), t.record.outcome.c_str(), t.attempts,
        spec.maxAttempts, t.record.detail.c_str(), argvLine.c_str(),
        (unsigned long long)t.plan.seed, tailOfFile(logPath).c_str());
    atomicWriteFile(dir + "/" + t.plan.id() + ".txt", body);
}

} // namespace

CampaignSummary
runCampaign(const CampaignSpec &spec, const std::string &selfExe)
{
    const fs::path work(spec.workDir);
    const std::string artifactsDir = (work / "artifacts").string();
    const std::string logsDir = (work / "logs").string();
    const std::string postmortemDir = (work / "postmortems").string();
    const std::string quarantineDir = (work / "quarantine").string();
    std::error_code ec;
    for (const std::string &d :
         {artifactsDir, logsDir, postmortemDir, quarantineDir})
        fs::create_directories(d, ec);

    std::vector<PlannedRun> matrix = expandMatrix(spec);
    std::vector<RunTracker> trackers;
    trackers.reserve(matrix.size());
    for (PlannedRun &p : matrix) {
        RunTracker t;
        t.plan = p;
        t.record.bench = p.bench;
        t.record.scheme = p.scheme;
        t.record.mem = p.mem;
        t.record.nocArmed = p.nocArmed;
        t.record.seed = p.seed;
        trackers.push_back(std::move(t));
    }

    CampaignSummary summary;
    summary.campaign = spec.name;
    summary.spec = spec.summaryLine();
    summary.matrixSize = trackers.size();

    // Backoff jitter source: seeded from the policy so reruns of the
    // same campaign schedule retries identically.
    Rng retryRng(spec.retry.seed ^ 0xCAFEF00Dull);

    std::vector<Slot> slots(
        static_cast<std::size_t>(spec.jobs > 0 ? spec.jobs : 1));
    std::size_t remaining = trackers.size();

    auto finishRun = [&](RunTracker &t, const std::string &outcome,
                         const std::string &detail,
                         const std::string &argvLine,
                         const std::string &logPath) {
        t.state = RunState::Done;
        t.record.attempts = t.attempts;
        t.record.outcome = outcome;
        t.record.detail = detail;
        t.record.repro = argvLine;
        if (outcome != "completed")
            writePostmortem(postmortemDir, t, spec, argvLine, logPath);
        remaining--;
    };

    auto launch = [&](Slot &slot, int runIdx) -> bool {
        RunTracker &t = trackers[static_cast<std::size_t>(runIdx)];
        t.attempts++;
        t.state = RunState::Running;
        slot.runIdx = runIdx;
        slot.jsonPath = artifactsDir + "/" + t.plan.id() + ".json";
        slot.logPath = logsDir + "/" +
                       strprintf("%s_a%d.log", t.plan.id().c_str(),
                                 t.attempts);
        // A fresh attempt must not inherit a stale artifact from a
        // previous one.
        fs::remove(slot.jsonPath, ec);
        slot.argv =
            runArgv(spec, selfExe, t.plan, slot.jsonPath, t.attempts);
        if (!slot.child.start(slot.argv, slot.logPath, spec.timeoutMs,
                              spec.killGraceMs)) {
            // fork() itself failed: count the attempt as a failure and
            // let the normal retry path handle it.
            t.lastFailure = "spawn failed";
            slot.runIdx = -1;
            if (t.attempts >= spec.maxAttempts) {
                finishRun(t, "gap", "spawn failed",
                          argvToString(slot.argv), slot.logPath);
            } else {
                summary.retries++;
                t.state = RunState::WaitingRetry;
                t.readyAtMs = monotonicMs() +
                              retryDelayFor(spec.retry,
                                            BackoffDomain::Scalar,
                                            t.plan.index,
                                            (std::uint64_t)t.attempts,
                                            retryRng);
            }
            return false;
        }
        return true;
    };

    auto handleFinished = [&](Slot &slot) {
        RunTracker &t =
            trackers[static_cast<std::size_t>(slot.runIdx)];
        const ChildOutcome &oc = slot.child.outcome();
        const std::string argvLine = argvToString(slot.argv);
        slot.runIdx = -1;

        if (oc.ok()) {
            std::vector<BenchRun> rows;
            std::string why;
            bool haveFile = fs::exists(slot.jsonPath, ec);
            if (haveFile && ingestArtifact(slot.jsonPath, rows, why)) {
                t.runs = std::move(rows);
                finishRun(t, "completed", "", argvLine, slot.logPath);
                return;
            }
            if (haveFile) {
                // Complete exit, bad data: quarantine, never retry.
                fs::rename(slot.jsonPath,
                           quarantineDir + "/" + t.plan.id() + ".json",
                           ec);
                finishRun(t, "quarantined", why, argvLine,
                          slot.logPath);
                return;
            }
            // Exit 0 without an artifact is still a failed attempt.
            t.lastFailure = "exit 0 but no artifact written";
        } else {
            if (oc.exited && oc.exitCode == kMachineCheckExitCode) {
                // A machine-check abort is deterministic: the same
                // seed replays the same bit flip and the same abort,
                // so retrying only burns attempts.  Classify it as a
                // permanent loss with a repro line and move on.
                finishRun(t, "permanent", oc.describe(spec.timeoutMs),
                          argvLine, slot.logPath);
                return;
            }
            t.lastFailure = oc.describe(spec.timeoutMs);
        }

        if (t.attempts >= spec.maxAttempts) {
            finishRun(t, "gap",
                      strprintf("attempts exhausted; last: %s",
                                t.lastFailure.c_str()),
                      argvLine, slot.logPath);
            return;
        }
        summary.retries++;
        t.state = RunState::WaitingRetry;
        t.readyAtMs =
            monotonicMs() +
            retryDelayFor(spec.retry, BackoffDomain::Scalar,
                          t.plan.index, (std::uint64_t)t.attempts,
                          retryRng);
    };

    std::size_t nextPending = 0;
    while (remaining > 0) {
        // Reap / supervise busy slots.
        bool progressed = false;
        for (Slot &slot : slots) {
            if (slot.runIdx < 0)
                continue;
            if (slot.child.poll()) {
                handleFinished(slot);
                progressed = true;
            }
        }

        // Fill free slots: first-time runs in matrix order, then any
        // retry whose backoff expired.
        const std::uint64_t now = monotonicMs();
        for (Slot &slot : slots) {
            if (slot.runIdx >= 0)
                continue;
            int pick = -1;
            while (nextPending < trackers.size() &&
                   trackers[nextPending].state != RunState::Pending)
                nextPending++;
            if (nextPending < trackers.size()) {
                pick = static_cast<int>(nextPending);
            } else {
                for (std::size_t i = 0; i < trackers.size(); ++i) {
                    if (trackers[i].state == RunState::WaitingRetry &&
                        trackers[i].readyAtMs <= now) {
                        pick = static_cast<int>(i);
                        break;
                    }
                }
            }
            if (pick < 0)
                break;
            if (launch(slot, pick))
                progressed = true;
        }

        if (remaining > 0 && !progressed)
            sleepMs(5);
    }

    // Fold the surviving data, in matrix order, into summary records
    // and merged cells -- deterministic regardless of completion
    // interleaving.
    Merger merger;
    for (RunTracker &t : trackers) {
        summary.runs.push_back(t.record);
        if (t.record.outcome == "completed") {
            summary.completed++;
            for (const BenchRun &run : t.runs)
                merger.add(run, t.plan.mem, t.plan.nocArmed);
        } else if (t.record.outcome == "quarantined") {
            summary.quarantined++;
        } else if (t.record.outcome == "permanent") {
            summary.permanents++;
        } else {
            summary.gaps++;
        }
    }
    summary.cells = merger.cells();
    return summary;
}

} // namespace campaign
} // namespace glsc
