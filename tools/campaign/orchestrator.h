/**
 * @file
 * The campaign orchestrator: a fault-tolerant supervisor for sharded
 * simulation sweeps.
 *
 * runCampaign expands the spec into its run matrix, then drives a
 * fixed pool of worker slots through a deterministic scheduling loop:
 *
 *   Pending -> Running(attempt k) -> Completed
 *                                 -> WaitingRetry -> Running(k+1)
 *                                 -> Quarantined
 *                                 -> Permanent
 *                                 -> Gap
 *
 * Transition policy:
 *  - A child that exits nonzero, dies to a signal, or blows its
 *    wall-clock deadline is retried (capped-exponential backoff with
 *    jitter, reusing the simulator's own RetryPolicy machinery in
 *    milliseconds) up to maxAttempts; exhausting attempts records a
 *    GAP with a one-command repro line and a post-mortem file.
 *  - A child that exits 0 but whose artifact is missing is also
 *    retried: a clean exit without data is a failure.
 *  - A child that exits with kMachineCheckExitCode (an uncorrectable
 *    soft error, DESIGN.md sec. 14) is PERMANENT on the first
 *    attempt: the run is seeded, so the same flip and the same abort
 *    replay deterministically and retrying only burns attempts.
 *  - A child that exits 0 with an artifact the strict parser or the
 *    conservation checker rejects is QUARANTINED immediately -- no
 *    retry, because re-running cannot launder bad data -- and the
 *    offending file is moved to workDir/quarantine/ for forensics.
 *
 * Accounting invariant (pinned by the chaos self-test):
 *   completed + quarantined + gaps + permanents == matrixSize.
 */

#ifndef GLSC_TOOLS_CAMPAIGN_ORCHESTRATOR_H_
#define GLSC_TOOLS_CAMPAIGN_ORCHESTRATOR_H_

#include <string>

#include "campaign/spec.h"
#include "obs/stats_json.h"

namespace glsc {
namespace campaign {

/**
 * Runs the whole campaign described by @p spec, sharding children
 * across spec.jobs worker slots.  @p selfExe is this binary's own
 * path (used to spawn --chaos-child workers in chaos mode).  Returns
 * the merged summary; the caller decides exit status (self-check,
 * strict mode, baseline gate) and writes the summary artifact.
 */
CampaignSummary runCampaign(const CampaignSpec &spec,
                            const std::string &selfExe);

} // namespace campaign
} // namespace glsc

#endif // GLSC_TOOLS_CAMPAIGN_ORCHESTRATOR_H_
