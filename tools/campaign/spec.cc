#include "campaign/spec.h"

#include "campaign/chaos.h"
#include "sim/log.h"

namespace glsc {
namespace campaign {

std::string
CampaignSpec::summaryLine() const
{
    auto join = [](const std::vector<std::string> &v) {
        std::string out;
        for (const std::string &s : v)
            out += out.empty() ? s : "," + s;
        return out;
    };
    std::string noc;
    for (bool b : nocArmed)
        noc += (noc.empty() ? "" : ",") + std::string(b ? "on" : "off");
    std::string seedList;
    for (std::uint64_t s : seeds)
        seedList += (seedList.empty() ? "" : ",") +
                    strprintf("%llu", (unsigned long long)s);
    return strprintf(
        "benches=%s schemes=%s mems=%s noc=%s seeds=%s scale=%g "
        "attempts=%d timeoutMs=%llu%s",
        join(benches).c_str(), join(schemes).c_str(), join(mems).c_str(),
        noc.c_str(), seedList.c_str(), scale, maxAttempts,
        (unsigned long long)timeoutMs, chaos ? " chaos" : "");
}

std::string
CampaignSpec::outFile() const
{
    return outPath.empty() ? "CAMPAIGN_" + name + ".json" : outPath;
}

std::string
PlannedRun::id() const
{
    return strprintf("%03d_%s_%s_%s_noc%d_s%llu", index, bench.c_str(),
                     scheme.c_str(), mem.c_str(), nocArmed ? 1 : 0,
                     (unsigned long long)seed);
}

std::vector<PlannedRun>
expandMatrix(const CampaignSpec &spec)
{
    std::vector<PlannedRun> runs;
    for (const std::string &bench : spec.benches) {
        for (const std::string &scheme : spec.schemes) {
            for (const std::string &mem : spec.mems) {
                for (bool noc : spec.nocArmed) {
                    for (std::uint64_t seed : spec.seeds) {
                        PlannedRun r;
                        r.index = static_cast<int>(runs.size());
                        r.bench = bench;
                        r.scheme = scheme;
                        r.mem = mem;
                        r.nocArmed = noc;
                        r.seed = seed;
                        runs.push_back(std::move(r));
                    }
                }
            }
        }
    }
    return runs;
}

std::vector<std::string>
runArgv(const CampaignSpec &spec, const std::string &selfExe,
        const PlannedRun &run, const std::string &jsonPath, int attempt)
{
    std::vector<std::string> argv;
    if (spec.chaos) {
        ChaosBehavior b = chaosBehaviorFor(run.index);
        argv = {selfExe,
                "--chaos-child",
                chaosBehaviorName(b),
                "--flaky-after",
                strprintf("%d", spec.chaosFlakyAfter),
                "--attempt",
                strprintf("%d", attempt),
                "--bench",
                run.bench,
                "--scheme",
                run.scheme,
                "--seed",
                strprintf("%llu", (unsigned long long)run.seed),
                "--json",
                jsonPath};
        return argv;
    }
    argv = {spec.runner,
            "--only",
            run.bench + ":" + run.scheme,
            "--seed",
            strprintf("%llu", (unsigned long long)run.seed),
            "--scale",
            strprintf("%.17g", spec.scale),
            "--mem",
            run.mem,
            "--json",
            jsonPath};
    if (run.nocArmed)
        argv.push_back("--noc-armed");
    return argv;
}

std::string
argvToString(const std::vector<std::string> &argv)
{
    std::string out;
    for (const std::string &a : argv) {
        if (!out.empty())
            out += ' ';
        if (a.find_first_of(" \t\"'\\") == std::string::npos) {
            out += a;
        } else {
            out += '\'';
            for (char c : a)
                out += c == '\'' ? std::string("'\\''")
                                 : std::string(1, c);
            out += '\'';
        }
    }
    return out;
}

} // namespace campaign
} // namespace glsc
