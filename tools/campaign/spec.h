/**
 * @file
 * Declarative sweep specification for the campaign orchestrator.
 *
 * A campaign is the cross product of the bench-harness axes the
 * repository already exposes per binary -- benchmark x scheme x
 * main-memory backend x NoC arming x workload seed -- expanded into a
 * deterministic, ordered run matrix.  Each PlannedRun is one child
 * process invocation of the runner binary (sharded via the harness's
 * --only cell filter), or of a seeded chaos child when the campaign
 * runs in --chaos self-test mode.
 */

#ifndef GLSC_TOOLS_CAMPAIGN_SPEC_H_
#define GLSC_TOOLS_CAMPAIGN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "robust/robust_config.h"

namespace glsc {
namespace campaign {

/** Everything that defines a campaign, all deterministic. */
struct CampaignSpec
{
    std::string name = "sweep";
    /** Bench binary to shard (required unless chaos is set). */
    std::string runner;

    // Matrix axes.
    std::vector<std::string> benches = {"GBC", "FS",  "GPS", "HIP",
                                        "SMC", "MFP", "TMS"};
    std::vector<std::string> schemes = {"Base", "GLSC"};
    std::vector<std::string> mems = {"fixed"};
    std::vector<bool> nocArmed = {false};
    std::vector<std::uint64_t> seeds = {1};
    double scale = 0.05;

    // Supervision policy.
    int jobs = 4;              //!< worker-process slots
    int maxAttempts = 3;       //!< first try + retries per run
    std::uint64_t timeoutMs = 120000; //!< per-attempt wall-clock cap
    std::uint64_t killGraceMs = 2000; //!< SIGTERM -> SIGKILL grace
    /**
     * Host-side retry backoff between attempts, in MILLISECONDS: the
     * same RetryPolicy shape the simulated retry loops use
     * (src/core/retry.h), evaluated through retryDelayFor with the
     * run index as the "thread id" so concurrent retries de-phase.
     */
    RetryPolicy retry = {RetryKind::CappedExponential, 50, 2000, 0,
                         0xCA3Full};

    // Outputs.
    std::string outPath;       //!< "" = CAMPAIGN_<name>.json
    std::string workDir = "campaign_runs";

    // Optional perf-regression gate.
    std::string baseline;      //!< prior CAMPAIGN_*.json ("" = off)
    double gatePct = 5.0;      //!< mean-cycles regression tolerance

    // Chaos self-test mode.
    bool chaos = false;
    int chaosFlakyAfter = 2;   //!< flaky child succeeds on this attempt
    bool selfCheck = false;    //!< assert exact chaos accounting
    bool strict = false;       //!< exit nonzero on any gap/quarantine

    /** One-line human echo, embedded in the summary "spec" field. */
    std::string summaryLine() const;

    /** Resolved summary path (outPath or CAMPAIGN_<name>.json). */
    std::string outFile() const;
};

/** One planned child invocation of the run matrix. */
struct PlannedRun
{
    int index = 0; //!< position in expansion order (stable)
    std::string bench;
    std::string scheme;
    std::string mem;
    bool nocArmed = false;
    std::uint64_t seed = 1;

    /** Filesystem-safe unique id, e.g. "003_GBC_GLSC_fixed_noc0_s2". */
    std::string id() const;
};

/**
 * Expands the spec axes into the ordered run matrix:
 * bench-major, then scheme, mem, nocArmed, seed.  The order -- and
 * therefore each run's index -- is a pure function of the spec, which
 * is what makes the chaos behaviour assignment reproducible.
 */
std::vector<PlannedRun> expandMatrix(const CampaignSpec &spec);

/**
 * Child argv for @p run's attempt @p attempt (1-based): the runner
 * binary with --only/--seed/--scale/--mem/--json in real mode, or
 * @p selfExe with --chaos-child in chaos mode.
 */
std::vector<std::string> runArgv(const CampaignSpec &spec,
                                 const std::string &selfExe,
                                 const PlannedRun &run,
                                 const std::string &jsonPath,
                                 int attempt);

/** Single-line shell-quoted repro string for @p argv. */
std::string argvToString(const std::vector<std::string> &argv);

} // namespace campaign
} // namespace glsc

#endif // GLSC_TOOLS_CAMPAIGN_SPEC_H_
