#include "campaign/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>

#include "sim/exit_codes.h"
#include "sim/log.h"

namespace glsc {
namespace campaign {

std::uint64_t
monotonicMs()
{
    struct timespec ts;
    // glsc-lint: allow(determinism-wallclock) reason=host-side hang-detection deadline for supervised children; never reaches simulated time
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000ull +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000000ull;
}

void
sleepMs(std::uint64_t ms)
{
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(ms / 1000);
    ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000ull);
    nanosleep(&ts, nullptr);
}

std::string
ChildOutcome::describe(std::uint64_t timeoutMs) const
{
    if (timedOut) {
        return strprintf("timeout after %llu ms%s",
                         (unsigned long long)timeoutMs,
                         escalated ? " (SIGTERM ignored, SIGKILL)"
                                   : " (SIGTERM)");
    }
    if (termSignal != 0)
        return strprintf("killed by signal %d", termSignal);
    return strprintf("exit code %d", exitCode);
}

bool
SupervisedChild::start(const std::vector<std::string> &argv,
                       const std::string &logPath,
                       std::uint64_t timeoutMs,
                       std::uint64_t killGraceMs)
{
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    pid_t pid = fork();
    if (pid < 0)
        return false;
    if (pid == 0) {
        // Child: capture stdout+stderr in the per-attempt log so a
        // post-mortem can quote the worker's last words.
        int fd = open(logPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                      0644);
        if (fd >= 0) {
            dup2(fd, STDOUT_FILENO);
            dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO)
                close(fd);
        }
        execv(cargv[0], cargv.data());
        // exec failed: kExitExecFail mirrors command-not-found.
        _exit(kExitExecFail);
    }
    pid_ = pid;
    startMs_ = monotonicMs();
    deadlineMs_ = startMs_ + timeoutMs;
    killAtMs_ = deadlineMs_ + killGraceMs;
    termSent_ = false;
    timedOut_ = false;
    escalated_ = false;
    outcome_ = ChildOutcome{};
    return true;
}

bool
SupervisedChild::poll()
{
    if (pid_ <= 0)
        return true;
    int status = 0;
    pid_t r = waitpid(pid_, &status, WNOHANG);
    if (r == pid_) {
        outcome_.wallMs = monotonicMs() - startMs_;
        outcome_.timedOut = timedOut_;
        outcome_.escalated = escalated_;
        if (WIFEXITED(status)) {
            outcome_.exited = true;
            outcome_.exitCode = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
            outcome_.termSignal = WTERMSIG(status);
        }
        pid_ = -1;
        return true;
    }
    if (r < 0 && errno == ECHILD) {
        // Should not happen (we only wait on our own children), but
        // never spin forever on a lost child.
        outcome_.termSignal = SIGKILL;
        outcome_.timedOut = timedOut_;
        pid_ = -1;
        return true;
    }
    const std::uint64_t now = monotonicMs();
    if (!termSent_ && now >= deadlineMs_) {
        timedOut_ = true;
        termSent_ = true;
        kill(pid_, SIGTERM);
    } else if (termSent_ && !escalated_ && now >= killAtMs_) {
        escalated_ = true;
        kill(pid_, SIGKILL);
    }
    return false;
}

} // namespace campaign
} // namespace glsc
