/**
 * @file
 * Host-side child-process supervision primitives.
 *
 * The campaign orchestrator treats every simulation run as an
 * unreliable worker: it may crash, hang, ignore SIGTERM, or die
 * mid-write.  SupervisedChild wraps one child process with the full
 * containment toolkit -- wall-clock deadline, SIGTERM with a kill
 * grace window, SIGKILL escalation, and exit-status attribution --
 * driven by the orchestrator's polling loop (no signals or threads in
 * the parent, so supervision stays deterministic and debuggable).
 */

#ifndef GLSC_TOOLS_CAMPAIGN_SUPERVISOR_H_
#define GLSC_TOOLS_CAMPAIGN_SUPERVISOR_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace glsc {
namespace campaign {

/** Milliseconds on the monotonic clock. */
std::uint64_t monotonicMs();

void sleepMs(std::uint64_t ms);

/** Final, attributed state of one reaped child. */
struct ChildOutcome
{
    bool exited = false;    //!< normal _exit; exitCode valid
    int exitCode = -1;
    int termSignal = 0;     //!< nonzero when the child died to a signal
    bool timedOut = false;  //!< the supervisor's deadline fired
    bool escalated = false; //!< SIGTERM grace expired, SIGKILL sent
    std::uint64_t wallMs = 0;

    bool ok() const { return exited && exitCode == 0 && !timedOut; }

    /**
     * Deterministic one-line description ("exit code 42", "timeout
     * after 1000 ms (SIGTERM ignored, SIGKILL)").  Wall-clock time is
     * deliberately excluded so campaign summaries are byte-stable.
     */
    std::string describe(std::uint64_t timeoutMs) const;
};

/** One supervised child process. */
class SupervisedChild
{
  public:
    /**
     * Forks and execs @p argv with stdout+stderr redirected
     * (truncating) to @p logPath.  Returns false if the child could
     * not be spawned.
     */
    bool start(const std::vector<std::string> &argv,
               const std::string &logPath, std::uint64_t timeoutMs,
               std::uint64_t killGraceMs);

    /**
     * Non-blocking progress check: reaps the child if it finished,
     * enforces the deadline (SIGTERM, then SIGKILL after the grace
     * window).  Returns true once the child reached a final state;
     * outcome() is then valid.
     */
    bool poll();

    bool running() const { return pid_ > 0; }
    const ChildOutcome &outcome() const { return outcome_; }

  private:
    pid_t pid_ = -1;
    std::uint64_t startMs_ = 0;
    std::uint64_t deadlineMs_ = 0;
    std::uint64_t killAtMs_ = 0;
    bool termSent_ = false;
    bool timedOut_ = false;
    bool escalated_ = false;
    ChildOutcome outcome_;
};

} // namespace campaign
} // namespace glsc

#endif // GLSC_TOOLS_CAMPAIGN_SUPERVISOR_H_
