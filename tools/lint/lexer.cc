#include "lexer.h"

#include <cctype>

namespace glsc::lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** The string-literal prefixes that make the next '"' a raw string. */
bool
isRawPrefix(const std::string &s)
{
    return s == "R" || s == "LR" || s == "uR" || s == "UR" || s == "u8R";
}

/** The string-literal prefixes for ordinary encoded strings. */
bool
isStrPrefix(const std::string &s)
{
    return s == "L" || s == "u" || s == "U" || s == "u8";
}

class Lexer
{
  public:
    explicit Lexer(const std::string &text) : s_(text) {}

    LexOutput run()
    {
        while (pos_ < s_.size())
            step();
        return std::move(out_);
    }

  private:
    char cur() const { return s_[pos_]; }
    char peek(std::size_t k = 1) const
    {
        return pos_ + k < s_.size() ? s_[pos_ + k] : '\0';
    }

    void advance()
    {
        if (s_[pos_] == '\n') {
            line_++;
            col_ = 1;
            lineHasCode_ = false;
        } else {
            col_++;
        }
        pos_++;
    }

    void emit(TokKind kind, std::string text, int line, int col)
    {
        out_.tokens.push_back({kind, std::move(text), line, col});
        lineHasCode_ = true;
    }

    void step()
    {
        char c = cur();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
            c == '\f' || c == '\v') {
            advance();
            return;
        }
        if (c == '/' && peek() == '/') {
            lineComment();
            return;
        }
        if (c == '/' && peek() == '*') {
            blockComment();
            return;
        }
        if (c == '#' && !lineHasCode_) {
            preprocessor();
            return;
        }
        if (identStart(c)) {
            identifier();
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
            number();
            return;
        }
        if (c == '"') {
            stringLit();
            return;
        }
        if (c == '\'') {
            charLit();
            return;
        }
        punct();
    }

    void lineComment()
    {
        Comment cm;
        cm.line = line_;
        cm.col = col_;
        cm.ownsLine = !lineHasCode_;
        advance(); // '/'
        advance(); // '/'
        while (pos_ < s_.size() && cur() != '\n') {
            cm.text += cur();
            advance();
        }
        out_.comments.push_back(std::move(cm));
    }

    void blockComment()
    {
        Comment cm;
        cm.line = line_;
        cm.col = col_;
        cm.ownsLine = !lineHasCode_;
        advance(); // '/'
        advance(); // '*'
        while (pos_ < s_.size()) {
            if (cur() == '*' && peek() == '/') {
                advance();
                advance();
                break;
            }
            cm.text += cur();
            advance();
        }
        out_.comments.push_back(std::move(cm));
    }

    /**
     * Consumes a whole preprocessor logical line (with backslash
     * continuations), recording #include targets by basename.  A
     * trailing // comment on the directive still reaches the comment
     * stream so suppressions next to includes work.
     */
    void preprocessor()
    {
        std::string text;
        while (pos_ < s_.size()) {
            if (cur() == '/' && peek() == '/') {
                lineComment();
                continue;
            }
            if (cur() == '/' && peek() == '*') {
                blockComment();
                continue;
            }
            if (cur() == '\\' && (peek() == '\n' ||
                                  (peek() == '\r' && peek(2) == '\n'))) {
                advance();
                while (pos_ < s_.size() && cur() != '\n')
                    advance();
                advance();
                text += ' ';
                continue;
            }
            if (cur() == '\n')
                break;
            text += cur();
            advance();
        }
        std::size_t inc = text.find("include");
        if (inc != std::string::npos) {
            std::size_t open = text.find_first_of("\"<", inc);
            if (open != std::string::npos) {
                char closeCh = text[open] == '<' ? '>' : '"';
                std::size_t close = text.find(closeCh, open + 1);
                if (close != std::string::npos) {
                    std::string target =
                        text.substr(open + 1, close - open - 1);
                    std::size_t slash = target.find_last_of('/');
                    if (slash != std::string::npos)
                        target = target.substr(slash + 1);
                    out_.includes.push_back(std::move(target));
                }
            }
        }
    }

    void identifier()
    {
        int l = line_, c = col_;
        std::string text;
        while (pos_ < s_.size() && identBody(cur())) {
            text += cur();
            advance();
        }
        if (pos_ < s_.size() && cur() == '"') {
            if (isRawPrefix(text)) {
                rawString(l, c);
                return;
            }
            if (isStrPrefix(text)) {
                stringLit();
                return;
            }
        }
        emit(TokKind::Ident, std::move(text), l, c);
    }

    /** Numbers, loosely: digits, hex, separators, exponents. */
    void number()
    {
        int l = line_, c = col_;
        std::string text;
        while (pos_ < s_.size()) {
            char ch = cur();
            if (identBody(ch) || ch == '\'' || ch == '.') {
                text += ch;
                advance();
                continue;
            }
            if ((ch == '+' || ch == '-') && !text.empty()) {
                char prev = text.back();
                if (prev == 'e' || prev == 'E' || prev == 'p' ||
                    prev == 'P') {
                    text += ch;
                    advance();
                    continue;
                }
            }
            break;
        }
        emit(TokKind::Number, std::move(text), l, c);
    }

    void stringLit()
    {
        int l = line_, c = col_;
        std::string text;
        advance(); // opening quote
        while (pos_ < s_.size() && cur() != '"' && cur() != '\n') {
            if (cur() == '\\' && pos_ + 1 < s_.size()) {
                text += cur();
                advance();
            }
            text += cur();
            advance();
        }
        if (pos_ < s_.size() && cur() == '"')
            advance();
        emit(TokKind::String, std::move(text), l, c);
    }

    void rawString(int l, int c)
    {
        advance(); // opening quote
        std::string delim;
        while (pos_ < s_.size() && cur() != '(') {
            delim += cur();
            advance();
        }
        if (pos_ < s_.size())
            advance(); // '('
        std::string close = ")" + delim + "\"";
        std::string text;
        while (pos_ < s_.size()) {
            if (cur() == ')' && s_.compare(pos_, close.size(), close) == 0) {
                for (std::size_t i = 0; i < close.size(); i++)
                    advance();
                break;
            }
            text += cur();
            advance();
        }
        emit(TokKind::String, std::move(text), l, c);
    }

    void charLit()
    {
        int l = line_, c = col_;
        std::string text;
        advance(); // opening quote
        while (pos_ < s_.size() && cur() != '\'' && cur() != '\n') {
            if (cur() == '\\' && pos_ + 1 < s_.size()) {
                text += cur();
                advance();
            }
            text += cur();
            advance();
        }
        if (pos_ < s_.size() && cur() == '\'')
            advance();
        emit(TokKind::CharLit, std::move(text), l, c);
    }

    void punct()
    {
        int l = line_, c = col_;
        char ch = cur();
        if (ch == ':' && peek() == ':') {
            advance();
            advance();
            emit(TokKind::Punct, "::", l, c);
            return;
        }
        if (ch == '-' && peek() == '>') {
            advance();
            advance();
            emit(TokKind::Punct, "->", l, c);
            return;
        }
        advance();
        emit(TokKind::Punct, std::string(1, ch), l, c);
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    bool lineHasCode_ = false;
    LexOutput out_;
};

} // namespace

LexOutput
lex(const std::string &text)
{
    return Lexer(text).run();
}

} // namespace glsc::lint
