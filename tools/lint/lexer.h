/**
 * @file
 * A lightweight C++ tokenizer for glsc-lint.
 *
 * This is not a compiler front end: it produces just enough structure
 * for the rule pack in rules.cc -- identifiers, numbers, literals and
 * punctuation with 1-based source positions -- while being exactly
 * right about the things naive grep-based linting gets wrong:
 * comments (line and block), string and character literals, raw
 * strings (`R"delim(...)delim"`), digit separators, and preprocessor
 * logical lines (including backslash continuations).
 *
 * Preprocessor directives are consumed whole and excluded from the
 * token stream (a banned identifier inside an `#if 0` arm or a macro
 * body is still scanned by text-level rules that want it, via
 * FileUnit::lines); `#include` targets are recorded by basename so
 * rules can reason about direct includes.  Comments are returned on a
 * side channel so the suppression parser can find
 * `// glsc-lint: allow(...)` markers without them ever shadowing code.
 */

#ifndef GLSC_TOOLS_LINT_LEXER_H_
#define GLSC_TOOLS_LINT_LEXER_H_

#include <string>
#include <vector>

namespace glsc::lint {

enum class TokKind {
    Ident,   //!< identifier or keyword
    Number,  //!< numeric literal (digit separators included)
    String,  //!< string literal, text is the uninterpreted body
    CharLit, //!< character literal
    Punct,   //!< punctuation; "::" and "->" are single tokens
};

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0; //!< 1-based
    int col = 0;  //!< 1-based byte column
};

struct Comment
{
    std::string text; //!< body without the // or /* */ markers
    int line = 0;     //!< 1-based line the comment starts on
    int col = 0;      //!< 1-based byte column of the marker
    bool ownsLine = false; //!< only whitespace precedes it on its line
};

struct LexOutput
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
    std::vector<std::string> includes; //!< #include targets, basenames
};

/** Tokenizes @p text.  Never fails: unexpected bytes become Punct. */
LexOutput lex(const std::string &text);

} // namespace glsc::lint

#endif // GLSC_TOOLS_LINT_LEXER_H_
