#include "lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>

#include "sim/log.h"

namespace glsc::lint {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// FileUnit construction.
// ---------------------------------------------------------------------

bool
FileUnit::pathEndsWith(const std::string &suffix) const
{
    if (path.size() < suffix.size())
        return false;
    if (path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    return path.size() == suffix.size() ||
           path[path.size() - suffix.size() - 1] == '/';
}

namespace {

FileCategory
categorize(const std::string &relPath)
{
    std::size_t slash = relPath.find('/');
    std::string first =
        slash == std::string::npos ? "" : relPath.substr(0, slash);
    if (first == "src")
        return FileCategory::Src;
    if (first == "bench")
        return FileCategory::Bench;
    if (first == "tools")
        return FileCategory::Tools;
    if (first == "tests")
        return FileCategory::Tests;
    return FileCategory::Other;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(std::move(cur));
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/**
 * Parses `glsc-lint: allow(a,b) reason=...` markers out of the
 * comment stream.  Anything after "glsc-lint:" that fails to parse
 * still produces a (malformed) Suppression so hygiene checking can
 * point at it.
 */
std::vector<Suppression>
parseSuppressions(const LexOutput &lx)
{
    std::vector<Suppression> out;
    for (const Comment &cm : lx.comments) {
        // A marker must open the comment; prose *mentioning* the
        // syntax mid-comment (docs, this very file) is not one.
        std::string body = trim(cm.text);
        if (body.compare(0, 10, "glsc-lint:") != 0)
            continue;
        Suppression sup;
        sup.commentLine = cm.line;
        sup.targetLine = cm.ownsLine ? cm.line + 1 : cm.line;
        std::string rest = trim(body.substr(10));
        if (rest.compare(0, 6, "allow(") != 0) {
            sup.malformed = true;
            out.push_back(std::move(sup));
            continue;
        }
        std::size_t close = rest.find(')', 6);
        if (close == std::string::npos) {
            sup.malformed = true;
            out.push_back(std::move(sup));
            continue;
        }
        std::string csv = rest.substr(6, close - 6);
        std::size_t pos = 0;
        while (pos <= csv.size()) {
            std::size_t comma = csv.find(',', pos);
            std::string one =
                trim(csv.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos));
            if (!one.empty())
                sup.rules.push_back(std::move(one));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (sup.rules.empty())
            sup.malformed = true;
        std::string tail = trim(rest.substr(close + 1));
        if (tail.compare(0, 7, "reason=") == 0)
            sup.reason = trim(tail.substr(7));
        out.push_back(std::move(sup));
    }
    return out;
}

} // namespace

FileUnit
makeFileUnit(std::string relPath, std::string text)
{
    FileUnit f;
    f.path = std::move(relPath);
    f.category = categorize(f.path);
    f.text = std::move(text);
    f.lines = splitLines(f.text);
    f.lex = lex(f.text);
    f.suppressions = parseSuppressions(f.lex);
    return f;
}

// ---------------------------------------------------------------------
// Tree loading.
// ---------------------------------------------------------------------

bool
loadTree(const std::string &root, std::vector<FileUnit> &out,
         std::string *err)
{
    static const char *kTrees[] = {"src", "bench", "tools", "tests"};
    std::vector<std::string> rels;
    for (const char *tree : kTrees) {
        fs::path top = fs::path(root) / tree;
        std::error_code ec;
        if (!fs::is_directory(top, ec))
            continue;
        for (fs::recursive_directory_iterator
                 it(top, fs::directory_options::skip_permission_denied,
                    ec),
             end;
             it != end; it.increment(ec)) {
            if (ec) {
                if (err != nullptr)
                    *err = strprintf("walking %s: %s", top.c_str(),
                                     ec.message().c_str());
                return false;
            }
            if (!it->is_regular_file(ec))
                continue;
            std::string rel =
                fs::relative(it->path(), root, ec).generic_string();
            if (ec)
                continue;
            std::string ext = it->path().extension().string();
            if (ext != ".h" && ext != ".cc")
                continue;
            // Lint fixtures are deliberate violations; never scan
            // them as part of the real tree.
            if (rel.find("/data/") != std::string::npos)
                continue;
            rels.push_back(std::move(rel));
        }
    }
    std::sort(rels.begin(), rels.end());
    for (const std::string &rel : rels) {
        fs::path abs = fs::path(root) / rel;
        std::FILE *f = std::fopen(abs.c_str(), "rb");
        if (f == nullptr) {
            if (err != nullptr)
                *err = strprintf("cannot open %s", abs.c_str());
            return false;
        }
        std::string text;
        char buf[1 << 16];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        out.push_back(makeFileUnit(rel, std::move(text)));
    }
    return true;
}

// ---------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------

namespace {

const char kHygieneRule[] = "suppression-hygiene";

std::string
joinRules(const std::vector<std::string> &rules)
{
    std::string out;
    for (const std::string &r : rules) {
        if (!out.empty())
            out += ",";
        out += r;
    }
    return out;
}

} // namespace

LintResult
runLint(const std::vector<FileUnit> &tree)
{
    std::vector<std::unique_ptr<Rule>> rules = defaultRules();
    std::set<std::string> knownIds;
    for (const auto &r : rules)
        knownIds.insert(r->id());

    std::vector<Finding> raw;
    for (const auto &r : rules)
        r->run(tree, raw);

    LintResult result;
    for (const FileUnit &f : tree) {
        for (const Suppression &sup : f.suppressions) {
            // Hygiene first: malformed markers, missing reasons and
            // unknown rule ids are findings in their own right, and
            // are deliberately not suppressible.
            if (sup.malformed) {
                result.findings.push_back(
                    {kHygieneRule, f.path, sup.commentLine, 1,
                     "malformed glsc-lint comment; expected "
                     "'glsc-lint: allow(<rule>[,<rule>]) "
                     "reason=<why>'"});
                continue;
            }
            if (sup.reason.empty()) {
                result.findings.push_back(
                    {kHygieneRule, f.path, sup.commentLine, 1,
                     strprintf("suppression of %s is missing the "
                               "mandatory reason=<why>",
                               joinRules(sup.rules).c_str())});
            }
            for (const std::string &rid : sup.rules) {
                if (knownIds.count(rid) == 0) {
                    result.findings.push_back(
                        {kHygieneRule, f.path, sup.commentLine, 1,
                         strprintf("suppression names unknown rule "
                                   "'%s'",
                                   rid.c_str())});
                }
            }
            LintSuppressionRow row;
            row.file = f.path;
            row.line = sup.commentLine;
            row.rules = joinRules(sup.rules);
            row.reason = sup.reason;
            result.suppressions.push_back(std::move(row));
        }
    }

    for (Finding &fd : raw) {
        bool suppressed = false;
        for (const FileUnit &f : tree) {
            if (f.path != fd.file)
                continue;
            for (const Suppression &sup : f.suppressions) {
                if (sup.malformed || sup.targetLine != fd.line)
                    continue;
                if (std::find(sup.rules.begin(), sup.rules.end(),
                              fd.rule) != sup.rules.end()) {
                    suppressed = true;
                    break;
                }
            }
            break;
        }
        if (!suppressed)
            result.findings.push_back(std::move(fd));
    }

    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  return a.rule < b.rule;
              });
    std::sort(result.suppressions.begin(), result.suppressions.end(),
              [](const LintSuppressionRow &a,
                 const LintSuppressionRow &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  return a.line < b.line;
              });
    return result;
}

LintDoc
toLintDoc(const LintResult &result)
{
    LintDoc doc;
    for (const Finding &f : result.findings)
        doc.findings.push_back(
            {f.rule, f.file, f.line, f.col, f.message});
    doc.suppressions = result.suppressions;
    return doc;
}

std::string
formatText(const LintResult &result)
{
    std::string out;
    for (const Finding &f : result.findings)
        out += strprintf("%s:%d:%d: %s: %s\n", f.file.c_str(), f.line,
                         f.col, f.rule.c_str(), f.message.c_str());
    out += strprintf("glsc-lint: %zu finding%s, %zu suppression%s\n",
                     result.findings.size(),
                     result.findings.size() == 1 ? "" : "s",
                     result.suppressions.size(),
                     result.suppressions.size() == 1 ? "" : "s");
    return out;
}

} // namespace glsc::lint
