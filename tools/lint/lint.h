/**
 * @file
 * glsc-lint: the project-specific static analyzer's engine.
 *
 * The simulator's correctness story rests on contracts that are only
 * checked dynamically -- bit-identical replay, per-fault-class seeded
 * RNG streams, zero-overhead-when-off tracing, schema-versioned stats
 * JSON, a collision-free exit-code registry.  ROADMAP item 1(b) (the
 * bound-weave parallel tick loop) will make silent violations of any
 * of them far harder to bisect, so glsc-lint enforces them at the
 * source level: a tokenizer (lexer.h), a pluggable rule pack
 * (rules.cc), inline suppressions with mandatory reasons, and a
 * schema-versioned JSON findings artifact (obs/stats_json.h, LINT
 * section) gate CI on a clean tree.  DESIGN.md section 15 is the rule
 * catalog and the how-to for adding a rule.
 *
 * Suppression syntax:
 *
 *     // glsc-lint: allow(rule-a,rule-b) reason=<rest of line>
 *
 * A suppression whose comment shares a line with code applies to that
 * line; a comment alone on its line applies to the next line.  The
 * reason is mandatory and rule ids must exist; violations of either
 * are `suppression-hygiene` findings, which can never themselves be
 * suppressed.
 */

#ifndef GLSC_TOOLS_LINT_LINT_H_
#define GLSC_TOOLS_LINT_LINT_H_

#include <memory>
#include <string>
#include <vector>

#include "lexer.h"
#include "obs/stats_json.h"

namespace glsc::lint {

/** Which top-level tree a file belongs to; rules scope on this. */
enum class FileCategory { Src, Bench, Tools, Tests, Other };

struct Finding
{
    std::string rule;
    std::string file; //!< path relative to the scanned root
    int line = 0;
    int col = 0;
    std::string message;
};

/** One parsed `// glsc-lint: allow(...)` marker. */
struct Suppression
{
    int commentLine = 0; //!< line of the marker itself
    int targetLine = 0;  //!< line the suppression applies to
    std::vector<std::string> rules;
    std::string reason;
    bool malformed = false; //!< marker present but unparseable
};

/** One source file, tokenized, with its suppressions parsed. */
struct FileUnit
{
    std::string path; //!< '/'-separated, relative to the scanned root
    FileCategory category = FileCategory::Other;
    std::string text;
    std::vector<std::string> lines; //!< line N is lines[N-1]
    LexOutput lex;
    std::vector<Suppression> suppressions;

    /** True when path ends with @p suffix on a component boundary. */
    bool pathEndsWith(const std::string &suffix) const;
};

/** Builds a FileUnit from in-memory text (fixtures, tests). */
FileUnit makeFileUnit(std::string relPath, std::string text);

/**
 * Loads every *.h / *.cc under root's src/, bench/, tools/ and tests/
 * trees (skipping any path with a `/data/` component -- lint fixtures
 * are deliberate violations).  Paths come back sorted so every run
 * sees files in the same order.
 */
bool loadTree(const std::string &root, std::vector<FileUnit> &out,
              std::string *err = nullptr);

/** A rule: scans the whole tree, appends findings. */
class Rule
{
  public:
    virtual ~Rule() = default;
    virtual const char *id() const = 0;
    virtual const char *summary() const = 0;
    virtual void run(const std::vector<FileUnit> &tree,
                     std::vector<Finding> &out) const = 0;
};

/** The shipped rule pack (rules.cc). */
std::vector<std::unique_ptr<Rule>> defaultRules();

struct LintResult
{
    /** Unsuppressed findings, sorted by (file, line, col, rule). */
    std::vector<Finding> findings;
    /** Every suppression in the tree, sorted by (file, line). */
    std::vector<LintSuppressionRow> suppressions;
};

/**
 * Runs the rule pack over @p tree, applies suppressions, and checks
 * suppression hygiene (mandatory reason, known rule ids, well-formed
 * markers).  Deterministic: output depends only on file contents.
 */
LintResult runLint(const std::vector<FileUnit> &tree);

/** The findings as the schema-versioned JSON artifact. */
LintDoc toLintDoc(const LintResult &result);

/** Human-readable report: one `file:line:col: rule: message` per finding. */
std::string formatText(const LintResult &result);

} // namespace glsc::lint

#endif // GLSC_TOOLS_LINT_LINT_H_
