/**
 * @file
 * glsc-lint command-line driver.
 *
 *   glsc-lint [--root DIR] [--json PATH] [--list-suppressions]
 *
 * Scans root's src/, bench/, tools/ and tests/ trees, prints one
 * `file:line:col: rule: message` per finding and exits kExitFatal if
 * any survive suppression.  --json writes the schema-versioned
 * findings artifact (atomically, of course).  --list-suppressions is
 * the audit mode: it prints every inline suppression with its reason
 * and fails if any reason is missing, so CI can keep the suppression
 * set honest even on an otherwise clean tree.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint.h"
#include "obs/artifact.h"
#include "sim/exit_codes.h"
#include "sim/log.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--json PATH] [--list-suppressions]\n"
        "  --root DIR            tree to scan (default .)\n"
        "  --json PATH           write the findings artifact\n"
        "  --list-suppressions   audit every inline suppression;\n"
        "                        fail on any missing reason=\n",
        argv0);
    std::exit(glsc::kExitUsage);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string jsonPath;
    bool listSuppressions = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--list-suppressions") == 0) {
            listSuppressions = true;
        } else {
            usage(argv[0]);
        }
    }

    std::vector<glsc::lint::FileUnit> tree;
    std::string err;
    if (!glsc::lint::loadTree(root, tree, &err)) {
        std::fprintf(stderr, "glsc-lint: %s\n", err.c_str());
        return glsc::kExitFatal;
    }
    if (tree.empty()) {
        std::fprintf(stderr,
                     "glsc-lint: no sources under %s (expected src/, "
                     "bench/, tools/ or tests/)\n",
                     root.c_str());
        return glsc::kExitFatal;
    }

    glsc::lint::LintResult result = glsc::lint::runLint(tree);

    if (!jsonPath.empty()) {
        std::string doc =
            glsc::lintDocToJson(glsc::lint::toLintDoc(result));
        if (!glsc::atomicWriteFile(jsonPath, doc)) {
            std::fprintf(stderr, "glsc-lint: cannot write %s\n",
                         jsonPath.c_str());
            return glsc::kExitFatal;
        }
    }

    if (listSuppressions) {
        bool bad = false;
        for (const glsc::LintSuppressionRow &s : result.suppressions) {
            std::printf("%s:%d: allow(%s) reason=%s\n",
                        s.file.c_str(), s.line, s.rules.c_str(),
                        s.reason.empty() ? "<MISSING>"
                                         : s.reason.c_str());
            bad = bad || s.reason.empty() || s.rules.empty();
        }
        std::printf("glsc-lint: %zu suppression%s\n",
                    result.suppressions.size(),
                    result.suppressions.size() == 1 ? "" : "s");
        return bad ? glsc::kExitFatal : glsc::kExitSuccess;
    }

    std::fputs(glsc::lint::formatText(result).c_str(), stdout);
    return result.findings.empty() ? glsc::kExitSuccess
                                   : glsc::kExitFatal;
}
