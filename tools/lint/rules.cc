/**
 * @file
 * The glsc-lint rule pack.  Each rule is a token- or text-level
 * heuristic wired to one of the repository's real invariants; the
 * catalog with rationale is DESIGN.md section 15.  Rules must be
 * deterministic (findings are a pure function of file contents) and
 * err toward precision: a false positive costs a suppression comment
 * in real code, so detection patterns here are tuned against the
 * actual tree and pinned by the fixtures under tests/data/lint/.
 */

#include "rules.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "lint.h"
#include "sim/log.h"

namespace glsc::lint {

namespace {

using Toks = std::vector<Token>;

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Ident && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** True when tokens[i] is directly preceded by '.' or '->'. */
bool
memberAccess(const Toks &toks, std::size_t i)
{
    return i > 0 &&
           (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->"));
}

/**
 * Given tokens[open] == "<", returns the index one past the matching
 * ">" (treating "<"/">" as angle brackets).  Returns open + 1 when no
 * match exists, so callers always make progress.
 */
std::size_t
skipAngles(const Toks &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); i++) {
        if (isPunct(toks[i], "<"))
            depth++;
        else if (isPunct(toks[i], ">") && --depth == 0)
            return i + 1;
    }
    return open + 1;
}

/** Index one past the ')' matching tokens[open] == "(". */
std::size_t
skipParens(const Toks &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); i++) {
        if (isPunct(toks[i], "("))
            depth++;
        else if (isPunct(toks[i], ")") && --depth == 0)
            return i + 1;
    }
    return open + 1;
}

bool
inCats(const FileUnit &f, std::initializer_list<FileCategory> cats)
{
    return std::find(cats.begin(), cats.end(), f.category) !=
           cats.end();
}

std::string
lower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

// ---------------------------------------------------------------------
// determinism-wallclock: no ambient time or libc randomness anywhere.
// Bit-identical replay (DESIGN.md section 2) means every schedule is
// a pure function of (configuration, seed, program); a wall-clock
// read or rand() call anywhere in the repo is either a determinism
// bug or host-side supervision that must carry an explicit
// suppression saying so.
// ---------------------------------------------------------------------

class WallclockRule : public Rule
{
  public:
    const char *id() const override { return kRuleWallclock; }
    const char *summary() const override
    {
        return "no wall-clock reads or ambient randomness";
    }

    void run(const std::vector<FileUnit> &tree,
             std::vector<Finding> &out) const override
    {
        static const char *kBanned[] = {
            "rand",       "srand",          "random_device",
            "system_clock", "steady_clock", "high_resolution_clock",
            "clock_gettime", "gettimeofday", "time",
        };
        for (const FileUnit &f : tree) {
            const Toks &toks = f.lex.tokens;
            for (std::size_t i = 0; i < toks.size(); i++) {
                if (toks[i].kind != TokKind::Ident)
                    continue;
                bool banned = false;
                for (const char *b : kBanned)
                    banned = banned || toks[i].text == b;
                if (!banned || memberAccess(toks, i))
                    continue;
                // rand/srand/time/clock_gettime/gettimeofday are only
                // suspicious as calls; the clock types are suspicious
                // as any mention.
                bool callOnly = toks[i].text == "rand" ||
                                toks[i].text == "srand" ||
                                toks[i].text == "time" ||
                                toks[i].text == "clock_gettime" ||
                                toks[i].text == "gettimeofday";
                if (callOnly && (i + 1 >= toks.size() ||
                                 !isPunct(toks[i + 1], "(")))
                    continue;
                out.push_back(
                    {id(), f.path, toks[i].line, toks[i].col,
                     strprintf("'%s' reads ambient time/randomness; "
                               "schedules must be a pure function of "
                               "(config, seed, program) -- derive "
                               "from a config seed or Tick",
                               toks[i].text.c_str())});
            }
        }
    }
};

// ---------------------------------------------------------------------
// determinism-unordered-iteration: a range-for over an unordered
// container has hash-dependent order; if that order reaches sim
// state, stats or artifacts, replay breaks across standard libraries.
// The rule flags range-fors whose sequence names an identifier that
// is declared with an unordered_{map,set} type in this file or a
// directly-included header; collect-then-sort patterns carry a
// suppression explaining themselves.
// ---------------------------------------------------------------------

class UnorderedIterationRule : public Rule
{
  public:
    const char *id() const override { return kRuleUnorderedIteration; }
    const char *summary() const override
    {
        return "no hash-ordered iteration reaching state or artifacts";
    }

    void run(const std::vector<FileUnit> &tree,
             std::vector<Finding> &out) const override
    {
        // name -> files (basenames) declaring it with an unordered
        // type in the declaration's type spelling.
        std::map<std::string, std::set<std::string>> decls;
        for (const FileUnit &f : tree)
            collectDecls(f, decls);

        for (const FileUnit &f : tree) {
            if (!inCats(f, {FileCategory::Src}))
                continue;
            std::set<std::string> visible;
            visible.insert(basename(f.path));
            for (const std::string &inc : f.lex.includes)
                visible.insert(inc);
            const Toks &toks = f.lex.tokens;
            for (std::size_t i = 0; i + 1 < toks.size(); i++) {
                if (!isIdent(toks[i], "for") ||
                    !isPunct(toks[i + 1], "("))
                    continue;
                std::size_t close = skipParens(toks, i + 1);
                std::size_t colon = 0;
                int depth = 0;
                for (std::size_t j = i + 1; j < close; j++) {
                    if (isPunct(toks[j], "("))
                        depth++;
                    else if (isPunct(toks[j], ")"))
                        depth--;
                    else if (depth == 1 && isPunct(toks[j], ":")) {
                        colon = j;
                        break;
                    }
                }
                if (colon == 0)
                    continue;
                for (std::size_t j = colon + 1; j + 1 < close; j++) {
                    if (toks[j].kind != TokKind::Ident ||
                        isPunct(toks[j + 1], "("))
                        continue;
                    auto it = decls.find(toks[j].text);
                    if (it == decls.end())
                        continue;
                    bool vis = false;
                    for (const std::string &df : it->second)
                        vis = vis || visible.count(df) != 0;
                    if (!vis)
                        continue;
                    out.push_back(
                        {id(), f.path, toks[j].line, toks[j].col,
                         strprintf("range-for over hash-ordered "
                                   "'%s'; iteration order can leak "
                                   "into state, stats or artifacts "
                                   "-- sort keys first",
                                   toks[j].text.c_str())});
                }
            }
        }
    }

  private:
    static std::string basename(const std::string &path)
    {
        std::size_t slash = path.find_last_of('/');
        return slash == std::string::npos ? path
                                          : path.substr(slash + 1);
    }

    static void
    collectDecls(const FileUnit &f,
                 std::map<std::string, std::set<std::string>> &decls)
    {
        const Toks &toks = f.lex.tokens;
        for (std::size_t i = 0; i < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident)
                continue;
            const std::string &t = toks[i].text;
            if (t != "unordered_map" && t != "unordered_set" &&
                t != "unordered_multimap" && t != "unordered_multiset")
                continue;
            std::size_t j = i + 1;
            if (j < toks.size() && isPunct(toks[j], "<"))
                j = skipAngles(toks, j);
            // A wrapper like vector<unordered_map<...>> closes its
            // own angles after ours; skip them (and ref/ptr marks)
            // before taking the declared name.
            while (j < toks.size() &&
                   (isPunct(toks[j], ">") || isPunct(toks[j], "*") ||
                    isPunct(toks[j], "&")))
                j++;
            if (j + 1 >= toks.size() ||
                toks[j].kind != TokKind::Ident)
                continue;
            const Token &name = toks[j];
            const Token &after = toks[j + 1];
            if (isPunct(after, ";") || isPunct(after, "=") ||
                isPunct(after, "{") || isPunct(after, "("))
                decls[name.text].insert(basename(f.path));
        }
    }
};

// ---------------------------------------------------------------------
// determinism-pointer-keys: std::map/std::set keyed on a pointer type
// iterates in address order, which varies run to run (ASLR, allocator
// state) -- an ordered container hiding the same bug the unordered
// rule catches.  Key on a stable id instead.
// ---------------------------------------------------------------------

class PointerKeysRule : public Rule
{
  public:
    const char *id() const override { return kRulePointerKeys; }
    const char *summary() const override
    {
        return "no ordered containers keyed on pointer values";
    }

    void run(const std::vector<FileUnit> &tree,
             std::vector<Finding> &out) const override
    {
        for (const FileUnit &f : tree) {
            if (!inCats(f, {FileCategory::Src}))
                continue;
            const Toks &toks = f.lex.tokens;
            for (std::size_t i = 1; i + 1 < toks.size(); i++) {
                const std::string &t = toks[i].text;
                if (toks[i].kind != TokKind::Ident ||
                    (t != "map" && t != "set" && t != "multimap" &&
                     t != "multiset"))
                    continue;
                if (!isPunct(toks[i - 1], "::") ||
                    !isPunct(toks[i + 1], "<"))
                    continue;
                // Examine the first template argument only (the key).
                int depth = 0;
                bool star = false;
                for (std::size_t j = i + 1; j < toks.size(); j++) {
                    if (isPunct(toks[j], "<")) {
                        depth++;
                    } else if (isPunct(toks[j], ">")) {
                        if (--depth == 0)
                            break;
                    } else if (depth == 1 && isPunct(toks[j], ","))
                        break;
                    else if (depth == 1 && isPunct(toks[j], "*"))
                        star = true;
                }
                if (star)
                    out.push_back(
                        {id(), f.path, toks[i].line, toks[i].col,
                         "ordered container keyed on a pointer; "
                         "address order varies run to run -- key on "
                         "a stable id instead"});
            }
        }
    }
};

// ---------------------------------------------------------------------
// rng-seed-discipline: every engine-side Rng must be constructed (or
// member-initialized) from a configuration seed, per the dedicated
// stream pattern (`seed ^ golden-ratio-constant`).  A literal-only
// construction silently couples the stream to nothing the campaign
// can vary; a default construction that is never reseeded runs every
// instance on the same hardcoded stream.
// ---------------------------------------------------------------------

class RngSeedRule : public Rule
{
  public:
    const char *id() const override { return kRuleRngSeed; }
    const char *summary() const override
    {
        return "RNG streams must derive from a config seed";
    }

    void run(const std::vector<FileUnit> &tree,
             std::vector<Finding> &out) const override
    {
        for (const FileUnit &f : tree) {
            if (!inCats(f, {FileCategory::Src}))
                continue;
            const Toks &toks = f.lex.tokens;
            for (std::size_t i = 0; i + 1 < toks.size(); i++) {
                if (!isIdent(toks[i], "Rng") || memberAccess(toks, i))
                    continue;
                const Token &name = toks[i + 1];
                if (name.kind != TokKind::Ident || i + 2 >= toks.size())
                    continue;
                const Token &after = toks[i + 2];
                if (isPunct(after, "(") || isPunct(after, "{")) {
                    checkCtorArgs(f, name, toks, i + 2, out);
                } else if (isPunct(after, ";")) {
                    checkDeferredSeed(tree, f, name, out);
                }
            }
        }
    }

  private:
    void checkCtorArgs(const FileUnit &f, const Token &name,
                       const Toks &toks, std::size_t open,
                       std::vector<Finding> &out) const
    {
        const char *closeText = isPunct(toks[open], "(") ? ")" : "}";
        int depth = 0;
        bool ident = false, any = false;
        for (std::size_t j = open; j < toks.size(); j++) {
            if (toks[j].text == toks[open].text &&
                toks[j].kind == TokKind::Punct)
                depth++;
            else if (isPunct(toks[j], closeText) && --depth == 0)
                break;
            if (j > open) {
                any = true;
                ident = ident || toks[j].kind == TokKind::Ident;
            }
        }
        if (any && !ident)
            out.push_back(
                {id(), f.path, name.line, name.col,
                 strprintf("Rng '%s' is seeded from a literal; "
                           "derive the seed from configuration "
                           "(the seed ^ stream-constant pattern)",
                           name.text.c_str())});
    }

    /**
     * `Rng name;` -- fine iff somewhere in the tree `name` is
     * member-initialized with identifier-bearing args or reseeded.
     */
    void checkDeferredSeed(const std::vector<FileUnit> &tree,
                           const FileUnit &f, const Token &name,
                           std::vector<Finding> &out) const
    {
        for (const FileUnit &g : tree) {
            const Toks &toks = g.lex.tokens;
            for (std::size_t i = 0; i + 1 < toks.size(); i++) {
                if (toks[i].kind != TokKind::Ident ||
                    toks[i].text != name.text)
                    continue;
                if (isPunct(toks[i + 1], "(")) {
                    std::size_t close = skipParens(toks, i + 1);
                    for (std::size_t j = i + 2; j + 1 < close; j++)
                        if (toks[j].kind == TokKind::Ident)
                            return;
                }
                if (i + 2 < toks.size() && isPunct(toks[i + 1], ".") &&
                    isIdent(toks[i + 2], "reseed"))
                    return;
            }
        }
        out.push_back(
            {id(), f.path, name.line, name.col,
             strprintf("Rng '%s' is default-constructed and never "
                       "reseeded from a config-derived seed",
                       name.text.c_str())});
    }
};

// ---------------------------------------------------------------------
// trace-null-guard: tracing is zero-overhead when off because every
// emit site is dominated by a null check on the Tracer pointer
// (DESIGN.md section 5).  The rule finds `<tracer-expr>->emit(` and
// requires a dominating guard within the preceding window.
// ---------------------------------------------------------------------

class TraceGuardRule : public Rule
{
  public:
    const char *id() const override { return kRuleTraceGuard; }
    const char *summary() const override
    {
        return "every Tracer emit dominated by a null guard";
    }

    void run(const std::vector<FileUnit> &tree,
             std::vector<Finding> &out) const override
    {
        for (const FileUnit &f : tree) {
            if (!inCats(f, {FileCategory::Src}))
                continue;
            const Toks &toks = f.lex.tokens;
            for (std::size_t i = 1; i + 2 < toks.size(); i++) {
                if (!isPunct(toks[i], "->") ||
                    !isIdent(toks[i + 1], "emit") ||
                    !isPunct(toks[i + 2], "("))
                    continue;
                std::string base, last;
                buildBase(toks, i, base, last);
                std::string lowerBase = lower(base);
                if (lowerBase.find("tracer") == std::string::npos &&
                    base != "tr")
                    continue;
                if (!guarded(toks, i, base, last))
                    out.push_back(
                        {id(), f.path, toks[i + 1].line,
                         toks[i + 1].col,
                         strprintf("'%s->emit(...)' is not dominated "
                                   "by a null guard; tracing must "
                                   "cost nothing when off",
                                   base.c_str())});
            }
        }
    }

  private:
    /** Reconstructs the ident chain ending right before tokens[i]. */
    static void buildBase(const Toks &toks, std::size_t i,
                          std::string &base, std::string &last)
    {
        std::vector<std::string> parts;
        std::size_t j = i;
        while (j > 0) {
            const Token &t = toks[j - 1];
            if (t.kind == TokKind::Ident) {
                parts.push_back(t.text);
                if (last.empty())
                    last = t.text;
                j--;
                if (j > 0 && (isPunct(toks[j - 1], ".") ||
                              isPunct(toks[j - 1], "->") ||
                              isPunct(toks[j - 1], "::"))) {
                    parts.push_back(toks[j - 1].text);
                    j--;
                    continue;
                }
            }
            break;
        }
        for (auto it = parts.rbegin(); it != parts.rend(); ++it)
            base += *it;
    }

    /** Searches the preceding window for a dominating guard. */
    static bool guarded(const Toks &toks, std::size_t i,
                        const std::string &base,
                        const std::string &last)
    {
        static constexpr int kWindowLines = 80;
        int firstLine = toks[i].line - kWindowLines;
        std::string window;
        for (std::size_t j = i; j-- > 0;) {
            if (toks[j].line < firstLine)
                break;
            window.insert(0, toks[j].text);
        }
        const std::string pats[] = {
            base + "==nullptr",
            base + "!=nullptr",
            "if(" + base + ")",
            "if(" + base + "&&",
            // The C++17 if-init guard: if (Tracer *tr = ...) { ... }.
            // Deliberately not a bare `Tracer *x =` declaration --
            // that would let a member decl mask an unguarded emit.
            "if(Tracer*" + last + "=",
        };
        for (const std::string &p : pats)
            if (window.find(p) != std::string::npos)
                return true;
        return false;
    }
};

// ---------------------------------------------------------------------
// stats-schema-sync: the stats JSON schema is defined three times --
// the struct fields (stats/stats.h), the X-macro export lists
// (obs/stats_json.h) and the sizeof tripwires (obs/stats_json.cc) --
// and a schema bump must touch all three.  The rule cross-checks the
// scalar field *sets* (declaration order may legitimately differ
// from export order) and requires both tripwires to exist.
// ---------------------------------------------------------------------

class StatsSchemaRule : public Rule
{
  public:
    const char *id() const override { return kRuleStatsSchema; }
    const char *summary() const override
    {
        return "stats structs, X-macros and tripwires stay in sync";
    }

    void run(const std::vector<FileUnit> &tree,
             std::vector<Finding> &out) const override
    {
        for (const FileUnit &statsH : tree) {
            if (!statsH.pathEndsWith("stats/stats.h"))
                continue;
            std::string prefix = statsH.path.substr(
                0, statsH.path.size() -
                       std::string("stats/stats.h").size());
            const FileUnit *jsonH = nullptr, *jsonCc = nullptr;
            for (const FileUnit &g : tree) {
                if (g.path == prefix + "obs/stats_json.h")
                    jsonH = &g;
                if (g.path == prefix + "obs/stats_json.cc")
                    jsonCc = &g;
            }
            if (jsonH == nullptr || jsonCc == nullptr)
                continue;
            check(statsH, *jsonH, *jsonCc, "SystemStats",
                  "GLSC_STATS_U64_FIELDS", out);
            check(statsH, *jsonH, *jsonCc, "ThreadStats",
                  "GLSC_THREAD_STATS_U64_FIELDS", out);
        }
    }

  private:
    void check(const FileUnit &statsH, const FileUnit &jsonH,
               const FileUnit &jsonCc, const char *structName,
               const char *macroName,
               std::vector<Finding> &out) const
    {
        int structLine = 0;
        std::set<std::string> fields =
            structScalars(statsH, structName, structLine);
        int macroLine = 0;
        std::set<std::string> exported =
            xmacroEntries(jsonH, macroName, macroLine);
        if (structLine == 0 || macroLine == 0)
            return;
        for (const std::string &m : fields) {
            if (exported.count(m) == 0)
                out.push_back(
                    {id(), statsH.path, structLine, 1,
                     strprintf("%s scalar field '%s' is missing from "
                               "%s (obs/stats_json.h); a schema bump "
                               "must update struct, X-macro and "
                               "tripwire together",
                               structName, m.c_str(), macroName)});
        }
        for (const std::string &m : exported) {
            if (fields.count(m) == 0)
                out.push_back(
                    {id(), jsonH.path, macroLine, 1,
                     strprintf("%s entry '%s' has no matching scalar "
                               "field in %s (stats/stats.h)",
                               macroName, m.c_str(), structName)});
        }
        std::string needle =
            strprintf("sizeof(%s)", structName);
        if (jsonCc.text.find(needle) == std::string::npos)
            out.push_back(
                {id(), jsonCc.path, 1, 1,
                 strprintf("missing the sizeof(%s) schema tripwire "
                           "static_assert; adding a field must be a "
                           "conscious schema decision",
                           structName)});
    }

    /**
     * Scalar members (std::uint64_t / Tick / Addr) at depth 1 of the
     * struct body; template arguments are skipped so array/vector
     * element types are not mistaken for members.
     */
    static std::set<std::string>
    structScalars(const FileUnit &f, const char *structName,
                  int &structLine)
    {
        std::set<std::string> out;
        const Toks &toks = f.lex.tokens;
        for (std::size_t i = 0; i + 1 < toks.size(); i++) {
            if (!isIdent(toks[i], "struct") ||
                !isIdent(toks[i + 1], structName))
                continue;
            structLine = toks[i].line;
            std::size_t j = i + 2;
            while (j < toks.size() && !isPunct(toks[j], "{"))
                j++;
            int depth = 0;
            for (; j < toks.size(); j++) {
                if (isPunct(toks[j], "{")) {
                    depth++;
                } else if (isPunct(toks[j], "}")) {
                    if (--depth == 0)
                        break;
                } else if (depth == 1 &&
                           toks[j].kind == TokKind::Ident &&
                           j + 1 < toks.size() &&
                           isPunct(toks[j + 1], "<")) {
                    j = skipAngles(toks, j + 1) - 1;
                } else if (depth == 1 &&
                           (isIdent(toks[j], "uint64_t") ||
                            isIdent(toks[j], "Tick") ||
                            isIdent(toks[j], "Addr")) &&
                           j + 2 < toks.size() &&
                           toks[j + 1].kind == TokKind::Ident &&
                           (isPunct(toks[j + 2], ";") ||
                            isPunct(toks[j + 2], "=") ||
                            isPunct(toks[j + 2], "{"))) {
                    out.insert(toks[j + 1].text);
                    j++;
                }
            }
            break;
        }
        return out;
    }

    /** X(name) entries of a #define list, from the raw lines. */
    static std::set<std::string>
    xmacroEntries(const FileUnit &f, const char *macroName,
                  int &macroLine)
    {
        std::set<std::string> out;
        std::string defineNeedle =
            strprintf("#define %s", macroName);
        for (std::size_t li = 0; li < f.lines.size(); li++) {
            if (f.lines[li].find(defineNeedle) == std::string::npos)
                continue;
            macroLine = static_cast<int>(li) + 1;
            for (std::size_t k = li;; k++) {
                if (k >= f.lines.size())
                    break;
                const std::string &line = f.lines[k];
                std::size_t pos = 0;
                while ((pos = line.find("X(", pos)) !=
                       std::string::npos) {
                    std::size_t close = line.find(')', pos + 2);
                    // Skip GLSC_..._FIELDS(X) in the define head.
                    bool head =
                        pos >= 1 &&
                        (std::isalnum(static_cast<unsigned char>(
                             line[pos - 1])) ||
                         line[pos - 1] == '_' || line[pos - 1] == '(');
                    if (close != std::string::npos && !head)
                        out.insert(
                            line.substr(pos + 2, close - pos - 2));
                    pos += 2;
                }
                if (line.empty() || line.back() != '\\')
                    break;
            }
            break;
        }
        return out;
    }
};

// ---------------------------------------------------------------------
// exit-code-registry: supervisors (the campaign orchestrator, CI,
// ctest) branch on process exit statuses, so every code must mean
// exactly one thing.  Exit calls must use a named constant from
// sim/exit_codes.h (literal 0 excepted -- universally "success"),
// and the registry itself must stay collision-free with a doc
// comment on every constant.  Tests are exempt (death tests
// legitimately exercise raw statuses).
// ---------------------------------------------------------------------

class ExitCodesRule : public Rule
{
  public:
    const char *id() const override { return kRuleExitCodes; }
    const char *summary() const override
    {
        return "exit statuses come from the documented registry";
    }

    void run(const std::vector<FileUnit> &tree,
             std::vector<Finding> &out) const override
    {
        for (const FileUnit &f : tree) {
            if (f.pathEndsWith("sim/exit_codes.h")) {
                checkRegistry(f, out);
                continue;
            }
            if (!inCats(f, {FileCategory::Src, FileCategory::Bench,
                            FileCategory::Tools}))
                continue;
            const Toks &toks = f.lex.tokens;
            for (std::size_t i = 0; i + 2 < toks.size(); i++) {
                const std::string &t = toks[i].text;
                if (toks[i].kind != TokKind::Ident ||
                    (t != "exit" && t != "_exit" && t != "_Exit" &&
                     t != "quick_exit"))
                    continue;
                if (memberAccess(toks, i) ||
                    !isPunct(toks[i + 1], "("))
                    continue;
                if (i + 3 < toks.size() &&
                    toks[i + 2].kind == TokKind::Number &&
                    isPunct(toks[i + 3], ")") &&
                    toks[i + 2].text != "0")
                    out.push_back(
                        {id(), f.path, toks[i + 2].line,
                         toks[i + 2].col,
                         strprintf("%s called with literal status "
                                   "%s; use a named constant from "
                                   "sim/exit_codes.h so supervisors "
                                   "can branch on it",
                                   t.c_str(),
                                   toks[i + 2].text.c_str())});
            }
        }
    }

  private:
    void checkRegistry(const FileUnit &f,
                       std::vector<Finding> &out) const
    {
        const Toks &toks = f.lex.tokens;
        std::map<std::string, std::string> byValue; // value -> name
        for (std::size_t i = 0; i + 2 < toks.size(); i++) {
            if (toks[i].kind != TokKind::Ident ||
                toks[i].text.compare(0, 1, "k") != 0 ||
                !isPunct(toks[i + 1], "=") ||
                toks[i + 2].kind != TokKind::Number)
                continue;
            const std::string &name = toks[i].text;
            const std::string &val = toks[i + 2].text;
            auto [it, fresh] = byValue.emplace(val, name);
            if (!fresh)
                out.push_back(
                    {id(), f.path, toks[i].line, toks[i].col,
                     strprintf("exit code %s is defined twice: '%s' "
                               "and '%s'; codes must be unique so "
                               "supervisors can branch on them",
                               val.c_str(), it->second.c_str(),
                               name.c_str())});
            if (!documented(f, toks[i].line))
                out.push_back(
                    {id(), f.path, toks[i].line, toks[i].col,
                     strprintf("exit code '%s' has no doc comment; "
                               "the registry is the contract "
                               "supervisors read",
                               name.c_str())});
        }
    }

    /** A doc comment directly above (or on) the constant's line. */
    static bool documented(const FileUnit &f, int line)
    {
        for (int l = line - 1; l >= 1 && l >= line - 2; l--) {
            std::string s = f.lines[static_cast<std::size_t>(l) - 1];
            std::size_t b = s.find_first_not_of(" \t");
            if (b == std::string::npos)
                return false;
            if (s.compare(b, 2, "//") == 0 ||
                s.compare(b, 2, "*/") == 0 || s[b] == '*' ||
                s.compare(b, 2, "/*") == 0)
                return true;
        }
        return false;
    }
};

// ---------------------------------------------------------------------
// artifact-atomic-write: every artifact write goes through
// atomicWriteFile (obs/artifact.h) so a reader can never observe a
// torn file.  Direct fopen("w")/ofstream in engine, bench or tool
// code is a finding; obs/artifact.cc itself (the implementation) is
// exempt, and deliberate torn-write chaos carries a suppression.
// ---------------------------------------------------------------------

class AtomicWriteRule : public Rule
{
  public:
    const char *id() const override { return kRuleAtomicWrite; }
    const char *summary() const override
    {
        return "artifact writes route through atomicWriteFile";
    }

    void run(const std::vector<FileUnit> &tree,
             std::vector<Finding> &out) const override
    {
        for (const FileUnit &f : tree) {
            if (!inCats(f, {FileCategory::Src, FileCategory::Bench,
                            FileCategory::Tools}))
                continue;
            if (f.pathEndsWith("obs/artifact.cc"))
                continue;
            const Toks &toks = f.lex.tokens;
            for (std::size_t i = 0; i + 1 < toks.size(); i++) {
                if (isIdent(toks[i], "ofstream")) {
                    out.push_back(
                        {id(), f.path, toks[i].line, toks[i].col,
                         "std::ofstream writes are not atomic; "
                         "route the artifact through "
                         "atomicWriteFile (obs/artifact.h)"});
                    continue;
                }
                if (!isIdent(toks[i], "fopen") ||
                    !isPunct(toks[i + 1], "("))
                    continue;
                std::size_t close = skipParens(toks, i + 1);
                for (std::size_t j = i + 2; j + 1 < close; j++) {
                    if (toks[j].kind == TokKind::String &&
                        (toks[j].text == "w" ||
                         toks[j].text == "wb")) {
                        out.push_back(
                            {id(), f.path, toks[j].line, toks[j].col,
                             "direct fopen(\"w\") can leave a torn "
                             "file for readers; route the artifact "
                             "through atomicWriteFile "
                             "(obs/artifact.h)"});
                        break;
                    }
                }
            }
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Rule>>
defaultRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<WallclockRule>());
    rules.push_back(std::make_unique<UnorderedIterationRule>());
    rules.push_back(std::make_unique<PointerKeysRule>());
    rules.push_back(std::make_unique<RngSeedRule>());
    rules.push_back(std::make_unique<TraceGuardRule>());
    rules.push_back(std::make_unique<StatsSchemaRule>());
    rules.push_back(std::make_unique<ExitCodesRule>());
    rules.push_back(std::make_unique<AtomicWriteRule>());
    return rules;
}

} // namespace glsc::lint
