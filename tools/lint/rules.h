/**
 * @file
 * The shipped glsc-lint rule pack lives in rules.cc behind
 * lint.h's defaultRules(); this header only exposes the rule-id
 * strings so tests and docs can reference them without stringly
 * duplication.  The catalog itself -- what each rule checks and why
 * -- is DESIGN.md section 15.
 */

#ifndef GLSC_TOOLS_LINT_RULES_H_
#define GLSC_TOOLS_LINT_RULES_H_

namespace glsc::lint {

inline constexpr char kRuleWallclock[] = "determinism-wallclock";
inline constexpr char kRuleUnorderedIteration[] =
    "determinism-unordered-iteration";
inline constexpr char kRulePointerKeys[] = "determinism-pointer-keys";
inline constexpr char kRuleRngSeed[] = "rng-seed-discipline";
inline constexpr char kRuleTraceGuard[] = "trace-null-guard";
inline constexpr char kRuleStatsSchema[] = "stats-schema-sync";
inline constexpr char kRuleExitCodes[] = "exit-code-registry";
inline constexpr char kRuleAtomicWrite[] = "artifact-atomic-write";
inline constexpr char kRuleSuppressionHygiene[] = "suppression-hygiene";

} // namespace glsc::lint

#endif // GLSC_TOOLS_LINT_RULES_H_
